// rpdbscan_cli: cluster a point set from the command line with any
// algorithm in this repository.
//
// Input: --input=points.csv (headerless floats) or --input=points.rpds
// (binary, see io/binary.h), or a synthetic set via
// --generate=<moons|blobs|chameleon|geolife|cosmo|osm|tera> --n=<points>.
//
// Algorithm: --algo=<rp|exact|esp|rbp|cbp|spark|ng|naive> (default rp).
//
// Examples:
//   rpdbscan_cli --generate=blobs --n=50000 --eps=1.0 --minpts=20 --stats
//   rpdbscan_cli --input=data.csv --eps=0.5 --minpts=10 --output=labels.csv
//   rpdbscan_cli --input=data.csv --convert=data.rpds
//
// Exit status: 0 on success, 1 on any error (message on stderr).

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "baselines/exact_dbscan.h"
#include "baselines/naive_random_split.h"
#include "baselines/ng_dbscan.h"
#include "baselines/region_split.h"
#include "core/rp_dbscan.h"
#include "hierarchy/eps_ladder.h"
#include "io/binary.h"
#include "io/csv.h"
#include "io/mmap_dataset.h"
#include "io/point_source.h"
#include "io/section_file.h"
#include "io/transforms.h"
#include "metrics/cluster_stats.h"
#include "metrics/hausdorff.h"
#include "metrics/nmi.h"
#include "metrics/rand_index.h"
#include "parallel/thread_pool.h"
#include "serve/label_server.h"
#include "serve/model_registry.h"
#include "serve/request_loop.h"
#include "serve/snapshot.h"
#include "serve/snapshot_audit.h"
#include "spatial/kdtree.h"
#include "stream/epoch_registry.h"
#include "stream/incremental.h"
#include "synth/generators.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace rpdbscan {
namespace {

constexpr char kUsage[] = R"(usage: rpdbscan_cli [flags]
  input (pick one):
    --input=PATH          .csv (headerless floats) or .rpds (binary)
    --generate=KIND       moons|blobs|chameleon|geolife|cosmo|osm|tera
    --n=N                 points to generate (default 50000)
    --seed=S              generator seed (default 42)
  clustering:
    --algo=A              rp|exact|esp|rbp|cbp|spark|ng|naive (default rp)
    --eps=E               DBSCAN radius (required unless --convert)
    --minpts=M            density threshold (default 20)
    --rho=R               approximation rate (default 0.01)
    --partitions=K        partitions / splits (default 16)
    --threads=T           worker threads (default 4)
    --perpoint            rp only: use the reference per-point query path
                          instead of the batched Phase II kernel
    --tree-queries        rp only: enumerate Phase II candidates by
                          per-sub-dictionary tree descent instead of the
                          lattice-stencil hash probes
    --hashmap-phase1      rp only: use the reference hash-map Phase I-1
                          grouping instead of the sorted CSR build
    --scalar-kernels      rp only: force the scalar reference distance
                          kernels (no SIMD dispatch); labels identical
    --quantized           rp only: integer fixed-point candidate
                          pre-filter with exact fallback in the error
                          band; labels identical, auto-off on overflow
    --sequential-merge    rp only: tournament merge (Fig. 17 series)
                          instead of the edge-parallel union-find
    --mmap                rp only: memory-map an .rpds --input read-only
                          and build Phase I-1 out-of-core (external sort
                          spilling under --memory-budget); labels are
                          bit-identical to the in-RAM path
    --memory-budget=B     rp only: working-set budget for --mmap runs;
                          bytes with optional k/m/g suffix (default 64m)
    --shard-workers=W     rp only: build the Phase I-2 dictionary in W
                          forked worker processes, each shipping its
                          sub-dictionary shard back over a pipe
                          (default 0 = in-process)
    --audit[=LEVEL]       rp only: audit pipeline invariants between
                          phases; LEVEL is off|cheap|full (bare --audit
                          means full). Violations fail the run.
  preprocessing:
    --normalize=MODE      minmax (onto [0,100]^d) or zscore
  diagnostics:
    --kdist=K             print K-th nearest-neighbor distance quantiles
                          (the classic eps-selection aid) and exit
  output:
    --output=PATH         write points + label column as CSV
    --stats               print timing / structure statistics
    --stats-json=PATH     write the run statistics as one JSON object
                          (rp only; the serve subcommand reuses it for
                          query-throughput stats)
    --save-snapshot=PATH  rp only: freeze the clustering into a versioned
                          .rpsnap model for the serve subcommand
    --convert=PATH        just convert the input to .rpds binary and exit

hierarchy (multi-eps cluster hierarchy over one shared dictionary):
  rpdbscan_cli hierarchy --generate=blobs --n=20000
      --eps-levels=0.8,1.2,1.8 --minpts=12 [--sampled-cores=0.5 --score]
    --eps-levels=E1,E2,..  strictly ascending query radii; E1 also sets
                          the shared grid geometry (required)
    --min-pts=M1,M2,..    per-level density thresholds (one per level, or
                          a single value broadcast; default --minpts)
    --sampled-cores=F     DBSCAN++-style approximation: only a seeded
                          F-fraction of cells may become core (default 1)
    --sample-seed=S       cell-sampling seed (fixed default: a sampled
                          ladder matches sampled independent runs)
    --force-probe         hashed-probe candidate enumeration per level
                          instead of the neighborhood-CSR prefix reuse
    --no-seeding          re-count every level from scratch instead of
                          seeding core marking from the level below
    --score               also build the exact ladder and score each
                          level's labels against it (NMI, Rand index,
                          cluster Hausdorff)
    --save-snapshot=PATH  freeze the finest level with the whole ladder
                          attached as the snapshot's hierarchy section
    --output=PATH         write points + finest-level labels as CSV
    --stats-json=PATH     per-level and shared-stage statistics as JSON
  the rp engine flags (--rho --partitions --threads --perpoint
  --tree-queries --hashmap-phase1 --scalar-kernels --quantized
  --sequential-merge) apply to every level.

serving (classify out-of-sample points against a frozen model):
  rpdbscan_cli serve --snapshot=f.rpsnap --queries=q.csv [--threads=N]
  rpdbscan_cli serve --snapshot=f.rpsnap --listen=/tmp/rp.sock
  rpdbscan_cli serve --models=1=a.rpsnap,2=b.rpsnap --listen=/tmp/rp.sock
  rpdbscan_cli serve --connect=/tmp/rp.sock --queries=q.csv [--model-id=2]
    --snapshot=PATH       .rpsnap written by --save-snapshot (required
                          unless --connect or --models)
    --models=ID=PATH,..   multi-model registry: keep every listed
                          snapshot resident and route each framed
                          request by its model id (requires --listen;
                          unrouted v1 frames hit the default model)
    --default-model=ID    model answering unrouted requests (default:
                          the first listed)
    --model-id=ID         client mode: tag requests with this model id
                          (routed v2 frames)
    --queries=PATH        .csv or .rpds query points (required unless
                          --listen)
    --threads=T           serving threads (default 4)
    --verify              audit the snapshot (container + structure)
                          before serving; violations fail the command
    --approx-border       skip the exact border replay (answer non-core
                          cells by nearest labeled cell, kApprox)
    --listen=WHERE        serve framed classify requests instead of a
                          one-shot batch: `stdio` reads frames on stdin
                          and answers on stdout; any other value is a
                          unix socket path (one connection, served until
                          a shutdown frame or hangup)
    --connect=PATH        client mode: send --queries to a --listen=PATH
                          server over its unix socket and print/collect
                          the served labels (sends shutdown after)
    --output=PATH         write query points + served labels as CSV
    --stats-json=PATH     write serving throughput stats as JSON,
                          latency percentiles included (per-model
                          breakdown under --models)

streaming (replay the input as ingested batches, incrementally
re-clustering and hot-swapping epoch snapshots into a label server):
  rpdbscan_cli stream --generate=geolife --n=20000 --eps=2.0 --minpts=20
      --seed-points=15000 --batch-size=1000 --epoch-every=2
    --seed-points=S       points clustered up front as epoch 0 (default
                          half the input)
    --batch-size=B        points per ingested batch (default: the
                          remaining points split into 8 batches)
    --epoch-every=N       publish an epoch every N batches (default 1;
                          a final epoch covers any leftover batches)
    --epoch-dir=DIR       persist each epoch as DIR/epoch-<seq>.rpsnap
                          (DIR must exist)
    --audit[=LEVEL]       audit each epoch's pipeline stages at LEVEL
                          and additionally check every published
                          snapshot against a from-scratch run
                          (snapshot_audit pass 3); violations fail
    --output=PATH         write points + final-epoch labels as CSV
    --stats-json=PATH     write per-epoch stream statistics as one JSON
                          object (dirty_cells, reclustered_points,
                          epoch_publish_seconds, ...)
  the rp clustering flags (--eps --minpts --rho --partitions --threads
  --perpoint --tree-queries --hashmap-phase1 --scalar-kernels
  --quantized --sequential-merge) apply unchanged; every epoch's labels
  are bit-identical to a from-scratch run with those flags.
)";

/// "262144", "256k", "64m", "1g" -> bytes ("64mb" style also accepted).
StatusOr<size_t> ParseByteSize(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || errno == ERANGE) {
    return Status::InvalidArgument("bad byte size: " + text);
  }
  uint64_t shift = 0;
  if (*end != '\0') {
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k': shift = 10; break;
      case 'm': shift = 20; break;
      case 'g': shift = 30; break;
      default:
        return Status::InvalidArgument("bad byte-size suffix: " + text);
    }
    ++end;
    if (std::tolower(static_cast<unsigned char>(*end)) == 'b') ++end;
    if (*end != '\0') {
      return Status::InvalidArgument("bad byte-size suffix: " + text);
    }
  }
  if (value > (std::numeric_limits<uint64_t>::max() >> shift)) {
    return Status::InvalidArgument("byte size overflows: " + text);
  }
  return static_cast<size_t>(value << shift);
}

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

/// "0.8,1.2,1.8" -> {0.8, 1.2, 1.8}; empty entries and trailing junk fail.
StatusOr<std::vector<double>> ParseDoubleCsv(const std::string& text,
                                             const std::string& flag) {
  std::vector<double> values;
  for (const std::string& part : SplitCsv(text)) {
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(part.c_str(), &end);
    if (part.empty() || end != part.c_str() + part.size() ||
        errno == ERANGE) {
      return Status::InvalidArgument("bad " + flag + " entry: '" + part +
                                     "'");
    }
    values.push_back(v);
  }
  return values;
}

StatusOr<std::vector<size_t>> ParseSizeCsv(const std::string& text,
                                           const std::string& flag) {
  std::vector<size_t> values;
  for (const std::string& part : SplitCsv(text)) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(part.c_str(), &end, 10);
    if (part.empty() || end != part.c_str() + part.size() ||
        errno == ERANGE) {
      return Status::InvalidArgument("bad " + flag + " entry: '" + part +
                                     "'");
    }
    values.push_back(static_cast<size_t>(v));
  }
  return values;
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << text << '\n';
  if (!out.good()) return Status::IOError("short write to " + path);
  return Status::OK();
}

StatusOr<Dataset> LoadInput(const FlagSet& flags) {
  const std::string input = flags.GetString("input");
  const std::string generate = flags.GetString("generate");
  if (!input.empty() && !generate.empty()) {
    return Status::InvalidArgument("--input and --generate are exclusive");
  }
  if (!input.empty()) {
    if (input.size() >= 5 && input.substr(input.size() - 5) == ".rpds") {
      return ReadBinary(input);
    }
    return ReadCsv(input);
  }
  if (generate.empty()) {
    return Status::InvalidArgument("need --input or --generate");
  }
  auto n_or = flags.GetInt("n", 50000);
  auto seed_or = flags.GetInt("seed", 42);
  if (!n_or.ok()) return n_or.status();
  if (!seed_or.ok()) return seed_or.status();
  const size_t n = static_cast<size_t>(*n_or);
  const uint64_t seed = static_cast<uint64_t>(*seed_or);
  if (generate == "moons") return synth::Moons(n, 0.05, seed);
  if (generate == "blobs") return synth::Blobs(n, 10, 1.0, seed);
  if (generate == "chameleon") return synth::ChameleonLike(n, seed);
  if (generate == "geolife") return synth::GeoLifeLike(n, seed);
  if (generate == "cosmo") return synth::CosmoLike(n, seed);
  if (generate == "osm") return synth::OsmLike(n, seed);
  if (generate == "tera") return synth::TeraLike(n, seed);
  return Status::InvalidArgument("unknown generator: " + generate);
}

StatusOr<AuditLevel> ParseAuditFlag(const FlagSet& flags,
                                    AuditLevel fallback) {
  if (!flags.Has("audit")) return fallback;
  const std::string level = flags.GetString("audit");
  if (level.empty() || level == "full") return AuditLevel::kFull;
  if (level == "cheap") return AuditLevel::kCheap;
  if (level == "off") return AuditLevel::kOff;
  return Status::InvalidArgument("--audit must be off|cheap|full");
}

/// The flag -> RpDbscanOptions mapping, shared by the cluster and stream
/// paths so `stream` epochs are comparable to plain `--algo=rp` runs.
StatusOr<RpDbscanOptions> RpOptionsFromFlags(const FlagSet& flags) {
  auto eps_or = flags.GetDouble("eps", 0.0);
  auto minpts_or = flags.GetInt("minpts", 20);
  auto rho_or = flags.GetDouble("rho", 0.01);
  auto parts_or = flags.GetInt("partitions", 16);
  auto threads_or = flags.GetInt("threads", 4);
  if (!eps_or.ok()) return eps_or.status();
  if (!minpts_or.ok()) return minpts_or.status();
  if (!rho_or.ok()) return rho_or.status();
  if (!parts_or.ok()) return parts_or.status();
  if (!threads_or.ok()) return threads_or.status();
  RpDbscanOptions o;
  o.eps = *eps_or;
  o.min_pts = static_cast<size_t>(*minpts_or);
  o.rho = *rho_or;
  o.num_partitions = static_cast<size_t>(*parts_or);
  o.num_threads = static_cast<size_t>(*threads_or);
  o.batched_queries = !flags.GetBool("perpoint");
  o.stencil_queries = !flags.GetBool("tree-queries");
  o.sorted_phase1 = !flags.GetBool("hashmap-phase1");
  o.scalar_kernels = flags.GetBool("scalar-kernels");
  o.quantized = flags.GetBool("quantized");
  o.sequential_merge = flags.GetBool("sequential-merge");
  auto shard_or = flags.GetInt("shard-workers", 0);
  if (!shard_or.ok()) return shard_or.status();
  if (*shard_or < 0) {
    return Status::InvalidArgument("--shard-workers must be >= 0");
  }
  o.shard_workers = static_cast<size_t>(*shard_or);
  const std::string budget = flags.GetString("memory-budget");
  if (!budget.empty()) {
    auto budget_or = ParseByteSize(budget);
    if (!budget_or.ok()) return budget_or.status();
    if (*budget_or == 0) {
      return Status::InvalidArgument("--memory-budget must be > 0");
    }
    o.memory_budget_bytes = *budget_or;
  }
  auto audit_or = ParseAuditFlag(flags, o.audit_level);
  if (!audit_or.ok()) return audit_or.status();
  o.audit_level = *audit_or;
  return o;
}

/// `source` is non-null only for --mmap runs: the memory-mapped backing
/// store of `data` (which is then a borrowed view of it), routed into
/// RpDbscanOptions::point_source so Phase I-1 runs out-of-core.
StatusOr<Labels> Cluster(const FlagSet& flags, const Dataset& data,
                         bool print_stats,
                         const PointSource* source = nullptr) {
  auto eps_or = flags.GetDouble("eps", 0.0);
  auto minpts_or = flags.GetInt("minpts", 20);
  auto rho_or = flags.GetDouble("rho", 0.01);
  auto parts_or = flags.GetInt("partitions", 16);
  auto threads_or = flags.GetInt("threads", 4);
  if (!eps_or.ok()) return eps_or.status();
  if (!minpts_or.ok()) return minpts_or.status();
  if (!rho_or.ok()) return rho_or.status();
  if (!parts_or.ok()) return parts_or.status();
  if (!threads_or.ok()) return threads_or.status();
  const DbscanParams params{*eps_or, static_cast<size_t>(*minpts_or)};
  const std::string algo = flags.GetString("algo", "rp");

  if (source != nullptr && algo != "rp") {
    return Status::InvalidArgument("--mmap requires --algo=rp");
  }
  if (algo == "rp") {
    auto o_or = RpOptionsFromFlags(flags);
    if (!o_or.ok()) return o_or.status();
    RpDbscanOptions o = *o_or;
    o.point_source = source;
    const std::string save_snapshot = flags.GetString("save-snapshot");
    o.capture_model = !save_snapshot.empty();
    auto r = RunRpDbscan(data, o);
    if (!r.ok()) return r.status();
    if (print_stats) std::fputs(r->stats.ToString().c_str(), stdout);
    const std::string stats_json = flags.GetString("stats-json");
    if (!stats_json.empty()) {
      RPDBSCAN_RETURN_IF_ERROR(WriteTextFile(stats_json, r->stats.ToJson()));
      std::fprintf(stderr, "wrote %s\n", stats_json.c_str());
    }
    if (!save_snapshot.empty()) {
      auto snap_or = ClusterModelSnapshot::FromModel(std::move(*r->model));
      if (!snap_or.ok()) return snap_or.status();
      RPDBSCAN_RETURN_IF_ERROR(snap_or->WriteFile(save_snapshot));
      std::fprintf(stderr, "wrote snapshot %s (%zu cells, %zu clusters)\n",
                   save_snapshot.c_str(), snap_or->meta().num_cells,
                   snap_or->meta().num_clusters);
    }
    return std::move(r->labels);
  }
  if (flags.Has("save-snapshot") || flags.Has("stats-json")) {
    return Status::InvalidArgument(
        "--save-snapshot / --stats-json require --algo=rp");
  }
  if (algo == "exact") {
    auto r = RunExactDbscan(data, params);
    if (!r.ok()) return r.status();
    return std::move(r->labels);
  }
  if (algo == "esp" || algo == "rbp" || algo == "cbp" || algo == "spark") {
    RegionSplitOptions o;
    o.params = params;
    o.num_splits = static_cast<size_t>(*parts_or);
    o.num_threads = static_cast<size_t>(*threads_or);
    o.rho = *rho_or;
    o.rho_approximate = algo != "spark";
    o.strategy = algo == "esp"
                     ? RegionPartitionStrategy::kEvenSplit
                     : (algo == "rbp"
                            ? RegionPartitionStrategy::kReducedBoundary
                            : RegionPartitionStrategy::kCostBased);
    auto r = RunRegionSplitDbscan(data, o);
    if (!r.ok()) return r.status();
    if (print_stats) {
      std::printf("split %.3fs local %.3fs merge %.3fs; %zu pts processed\n",
                  r->split_seconds, r->local_seconds, r->merge_seconds,
                  r->points_processed);
    }
    return std::move(r->labels);
  }
  if (algo == "ng") {
    NgDbscanOptions o;
    o.params = params;
    auto r = RunNgDbscan(data, o);
    if (!r.ok()) return r.status();
    if (print_stats) {
      std::printf("graph %.3fs (%zu iterations), clustering %.3fs\n",
                  r->graph_seconds, r->iterations_run, r->cluster_seconds);
    }
    return std::move(r->labels);
  }
  if (algo == "naive") {
    NaiveRandomSplitOptions o;
    o.params = params;
    o.num_splits = static_cast<size_t>(*parts_or);
    o.num_threads = static_cast<size_t>(*threads_or);
    auto r = RunNaiveRandomSplitDbscan(data, o);
    if (!r.ok()) return r.status();
    return std::move(r->labels);
  }
  return Status::InvalidArgument("unknown --algo: " + algo);
}

StatusOr<Dataset> LoadQueries(const std::string& path) {
  if (path.size() >= 5 && path.substr(path.size() - 5) == ".rpds") {
    return ReadBinary(path);
  }
  return ReadCsv(path);
}

/// Binds a unix stream socket at `path` (replacing any stale socket file)
/// and returns the listening fd, or -1 with a message on stderr.
int ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
    return -1;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, 1) < 0) {
    std::fprintf(stderr, "bind/listen %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

int ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", path.c_str());
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::fprintf(stderr, "connect %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

int WriteServeOutput(const FlagSet& flags, const Dataset& queries,
                     const std::vector<ServeResult>& results) {
  const std::string output = flags.GetString("output");
  if (output.empty()) return 0;
  Labels labels(results.size(), kNoise);
  for (size_t i = 0; i < results.size(); ++i) {
    labels[i] = results[i].cluster;
  }
  const Status w = WriteCsv(output, queries, &labels);
  if (!w.ok()) {
    std::fprintf(stderr, "output failed: %s\n", w.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", output.c_str());
  return 0;
}

/// `serve --connect`: ship the query set to a --listen server over its
/// unix socket, collect the served labels, send shutdown.
int ServeClientMain(const FlagSet& flags, const std::string& socket_path) {
  const std::string queries_path = flags.GetString("queries");
  if (queries_path.empty()) {
    std::fprintf(stderr, "serve --connect needs --queries=PATH\n%s", kUsage);
    return 1;
  }
  auto queries_or = LoadQueries(queries_path);
  if (!queries_or.ok()) {
    std::fprintf(stderr, "query load failed: %s\n",
                 queries_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& queries = *queries_or;

  auto model_or = flags.GetInt("model-id", -1);
  if (!model_or.ok() ||
      *model_or > std::numeric_limits<uint32_t>::max()) {
    std::fprintf(stderr, "bad --model-id\n%s", kUsage);
    return 1;
  }

  const int fd = ConnectUnix(socket_path);
  if (fd < 0) return 1;
  const Stopwatch watch;
  // A --model-id tags the request with a routed (v2) frame so a --models
  // server answers from that snapshot; without it the classic v1 frame
  // reaches the server's default model.
  Status s = *model_or >= 0
                 ? SendRoutedClassifyRequest(
                       fd, static_cast<uint32_t>(*model_or), queries)
                 : SendClassifyRequest(fd, queries);
  StatusOr<std::vector<ServeResult>> results_or =
      s.ok() ? ReadClassifyResponse(fd) : StatusOr<std::vector<ServeResult>>(s);
  if (results_or.ok()) SendShutdown(fd);  // best-effort: we are done
  const double seconds = watch.ElapsedSeconds();
  ::close(fd);
  if (!results_or.ok()) {
    std::fprintf(stderr, "serve round-trip failed: %s\n",
                 results_or.status().ToString().c_str());
    return 1;
  }
  const std::vector<ServeResult>& results = *results_or;
  size_t core = 0, border = 0, noise = 0;
  for (const ServeResult& r : results) {
    if (r.kind == PointKind::kCore) ++core;
    if (r.kind == PointKind::kBorder) ++border;
    if (r.kind == PointKind::kNoise) ++noise;
  }
  std::printf(
      "served %zu queries over %s in %.3fs (%.0f queries/s round-trip): "
      "%zu core, %zu border, %zu noise\n",
      results.size(), socket_path.c_str(), seconds,
      seconds > 0 ? static_cast<double>(results.size()) / seconds : 0.0,
      core, border, noise);
  return WriteServeOutput(flags, queries, results);
}

/// `serve --models`: keep every listed snapshot resident in a
/// ModelRegistry and serve one framed request loop that routes each
/// request by its model id (routed v2 frames; unrouted v1 frames resolve
/// to the default model, so old clients keep working).
int ServeRegistryMain(const FlagSet& flags, const std::string& models_flag) {
  const std::string listen = flags.GetString("listen");
  auto threads_or = flags.GetInt("threads", 4);
  if (listen.empty() || !threads_or.ok()) {
    std::fprintf(stderr,
                 "serve --models needs --listen (stdio or a socket "
                 "path)\n%s",
                 kUsage);
    return 1;
  }
  if (!flags.GetString("snapshot").empty()) {
    std::fprintf(stderr, "--models and --snapshot are exclusive\n%s",
                 kUsage);
    return 1;
  }
  const size_t threads = *threads_or > 0 ? static_cast<size_t>(*threads_or)
                                         : size_t{1};
  ThreadPool pool(threads);

  LabelServerOptions sopts;
  sopts.exact_border = !flags.GetBool("approx-border");

  ModelRegistry registry;
  for (const std::string& entry : SplitCsv(models_flag)) {
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
      std::fprintf(stderr, "bad --models entry '%s' (want ID=PATH)\n%s",
                   entry.c_str(), kUsage);
      return 1;
    }
    auto id_or = ParseSizeCsv(entry.substr(0, eq), "--models id");
    if (!id_or.ok() ||
        id_or->front() > std::numeric_limits<uint32_t>::max()) {
      std::fprintf(stderr, "bad --models id in '%s'\n%s", entry.c_str(),
                   kUsage);
      return 1;
    }
    const uint32_t id = static_cast<uint32_t>(id_or->front());
    const std::string path = entry.substr(eq + 1);
    const Status s =
        registry.AddFile(id, path, SnapshotOptions(), sopts, &pool);
    if (!s.ok()) {
      std::fprintf(stderr, "model load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const ClusterModelSnapshot::Meta& meta =
        registry.Find(id)->snapshot().meta();
    std::fprintf(stderr,
                 "model %u: %s (dim %zu, eps %g, query eps %g, %zu cells, "
                 "%zu clusters)\n",
                 id, path.c_str(), meta.dim, meta.eps, meta.query_eps,
                 meta.num_cells, meta.num_clusters);
  }
  if (flags.Has("default-model")) {
    auto def_or = flags.GetInt("default-model", 0);
    const Status s = def_or.ok()
                         ? registry.SetDefault(
                               static_cast<uint32_t>(*def_or))
                         : def_or.status();
    if (!s.ok()) {
      std::fprintf(stderr, "--default-model: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "registry: %zu resident models, default %u\n",
               registry.size(), registry.default_id());

  RequestLoopStats rstats;
  Status s;
  const Stopwatch watch;
  if (listen == "stdio") {
    std::fprintf(stderr, "serving routed classify requests on stdio\n");
    s = ServeRequestLoop(/*in_fd=*/0, /*out_fd=*/1, registry, pool,
                         RequestLoopOptions(), &rstats);
  } else {
    const int lfd = ListenUnix(listen);
    if (lfd < 0) return 1;
    std::fprintf(stderr, "listening on %s\n", listen.c_str());
    const int cfd = ::accept(lfd, nullptr, nullptr);
    ::close(lfd);
    if (cfd < 0) {
      std::fprintf(stderr, "accept: %s\n", std::strerror(errno));
      ::unlink(listen.c_str());
      return 1;
    }
    s = ServeRequestLoop(cfd, cfd, registry, pool, RequestLoopOptions(),
                         &rstats);
    ::close(cfd);
    ::unlink(listen.c_str());
  }
  const double seconds = watch.ElapsedSeconds();
  if (!s.ok()) {
    std::fprintf(stderr, "request loop failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const LatencySummary lat = rstats.latency.Summarize();
  std::printf(
      "served %llu requests (%llu ok, %llu errors), %llu queries across "
      "%zu models in %.3fs on %zu threads; sojourn p50 %.1fus p99 %.1fus "
      "p999 %.1fus\n",
      static_cast<unsigned long long>(rstats.requests),
      static_cast<unsigned long long>(rstats.responses),
      static_cast<unsigned long long>(rstats.errors),
      static_cast<unsigned long long>(rstats.serve.queries),
      registry.size(), seconds, threads, lat.p50_us, lat.p99_us,
      lat.p999_us);
  for (const auto& [id, ms] : rstats.per_model) {
    const LatencySummary mlat = ms.latency.Summarize();
    std::printf(
        "  model %u: %llu requests (%llu ok, %llu errors), %llu queries; "
        "sojourn p50 %.1fus p99 %.1fus\n",
        id, static_cast<unsigned long long>(ms.requests),
        static_cast<unsigned long long>(ms.responses),
        static_cast<unsigned long long>(ms.errors),
        static_cast<unsigned long long>(ms.serve.queries), mlat.p50_us,
        mlat.p99_us);
  }

  const std::string stats_json = flags.GetString("stats-json");
  if (!stats_json.empty()) {
    std::string json = "{\n";
    json += "  \"command\": \"serve-registry\",\n";
    json += "  \"models_resident\": " + std::to_string(registry.size()) +
            ",\n";
    json += "  \"default_model\": " +
            std::to_string(registry.default_id()) + ",\n";
    json += "  \"requests\": " + std::to_string(rstats.requests) + ",\n";
    json += "  \"responses\": " + std::to_string(rstats.responses) + ",\n";
    json += "  \"errors\": " + std::to_string(rstats.errors) + ",\n";
    json += "  \"stream\": " +
            ServeStatsToJson(rstats.serve, seconds, threads, &lat) + ",\n";
    json += "  \"per_model\": {\n";
    size_t emitted = 0;
    for (const auto& [id, ms] : rstats.per_model) {
      const LatencySummary mlat = ms.latency.Summarize();
      json += "    \"" + std::to_string(id) + "\": {\"requests\": " +
              std::to_string(ms.requests) + ", \"responses\": " +
              std::to_string(ms.responses) + ", \"errors\": " +
              std::to_string(ms.errors) + ", \"stats\": " +
              ServeStatsToJson(ms.serve, seconds, threads, &mlat) + "}";
      json += ++emitted < rstats.per_model.size() ? ",\n" : "\n";
    }
    json += "  }\n}";
    const Status w = WriteTextFile(stats_json, json);
    if (!w.ok()) {
      std::fprintf(stderr, "stats-json failed: %s\n", w.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", stats_json.c_str());
  }
  return 0;
}

/// The `serve` subcommand: load a frozen .rpsnap model, then either
/// classify a query set as one batch, or serve framed classify requests
/// over stdio / a unix socket (--listen).
int ServeMain(const FlagSet& flags) {
  const std::string connect = flags.GetString("connect");
  if (!connect.empty()) return ServeClientMain(flags, connect);
  const std::string models = flags.GetString("models");
  if (!models.empty()) return ServeRegistryMain(flags, models);

  const std::string snap_path = flags.GetString("snapshot");
  const std::string queries_path = flags.GetString("queries");
  const std::string listen = flags.GetString("listen");
  auto threads_or = flags.GetInt("threads", 4);
  if (snap_path.empty() || (queries_path.empty() && listen.empty()) ||
      !threads_or.ok()) {
    std::fprintf(stderr,
                 "serve needs --snapshot=PATH and --queries=PATH (or "
                 "--listen)\n%s",
                 kUsage);
    return 1;
  }
  const size_t threads = *threads_or > 0 ? static_cast<size_t>(*threads_or)
                                         : size_t{1};
  ThreadPool pool(threads);

  auto snap_or = ClusterModelSnapshot::ReadFile(snap_path, SnapshotOptions(),
                                                &pool);
  if (!snap_or.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 snap_or.status().ToString().c_str());
    return 1;
  }
  auto snapshot = std::make_shared<const ClusterModelSnapshot>(
      std::move(*snap_or));
  const ClusterModelSnapshot::Meta& meta = snapshot->meta();
  std::fprintf(stderr,
               "loaded %s: dim %zu, eps %g, %zu cells, %zu clusters, "
               "trained on %zu points%s\n",
               snap_path.c_str(), meta.dim, meta.eps, meta.num_cells,
               meta.num_clusters, meta.num_points,
               meta.has_border_refs ? "" : " (no border refs)");

  if (flags.GetBool("verify")) {
    AuditReport report;
    auto bytes_or = ReadFileBytes(snap_path);
    if (!bytes_or.ok()) {
      std::fprintf(stderr, "verify failed: %s\n",
                   bytes_or.status().ToString().c_str());
      return 1;
    }
    report.Merge(AuditSnapshotBytes(*bytes_or));
    report.Merge(AuditSnapshotStructure(*snapshot));
    std::fprintf(stderr, "snapshot audit: %s\n", report.ToString().c_str());
    if (!report.ok()) return 1;
  }

  LabelServerOptions sopts;
  sopts.exact_border = !flags.GetBool("approx-border");
  const LabelServer server(snapshot, sopts);
  const std::string stats_json = flags.GetString("stats-json");

  if (!listen.empty()) {
    RequestLoopStats rstats;
    Status s;
    const Stopwatch watch;
    if (listen == "stdio") {
      std::fprintf(stderr, "serving framed classify requests on stdio\n");
      s = ServeRequestLoop(/*in_fd=*/0, /*out_fd=*/1, server, pool,
                           RequestLoopOptions(), &rstats);
    } else {
      const int lfd = ListenUnix(listen);
      if (lfd < 0) return 1;
      std::fprintf(stderr, "listening on %s\n", listen.c_str());
      const int cfd = ::accept(lfd, nullptr, nullptr);
      ::close(lfd);
      if (cfd < 0) {
        std::fprintf(stderr, "accept: %s\n", std::strerror(errno));
        ::unlink(listen.c_str());
        return 1;
      }
      s = ServeRequestLoop(cfd, cfd, server, pool, RequestLoopOptions(),
                           &rstats);
      ::close(cfd);
      ::unlink(listen.c_str());
    }
    // Wall time spans the whole loop, idle waits included — the sojourn
    // percentiles below are the per-request latency story.
    const double seconds = watch.ElapsedSeconds();
    if (!s.ok()) {
      std::fprintf(stderr, "request loop failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const LatencySummary lat = rstats.latency.Summarize();
    std::printf(
        "served %llu requests (%llu ok, %llu errors), %llu queries in "
        "%.3fs on %zu threads; sojourn p50 %.1fus p99 %.1fus p999 %.1fus\n",
        static_cast<unsigned long long>(rstats.requests),
        static_cast<unsigned long long>(rstats.responses),
        static_cast<unsigned long long>(rstats.errors),
        static_cast<unsigned long long>(rstats.serve.queries), seconds,
        threads, lat.p50_us, lat.p99_us, lat.p999_us);
    if (!stats_json.empty()) {
      const Status w = WriteTextFile(
          stats_json, ServeStatsToJson(rstats.serve, seconds, threads, &lat));
      if (!w.ok()) {
        std::fprintf(stderr, "stats-json failed: %s\n", w.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s\n", stats_json.c_str());
    }
    return 0;
  }

  auto queries_or = LoadQueries(queries_path);
  if (!queries_or.ok()) {
    std::fprintf(stderr, "query load failed: %s\n",
                 queries_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& queries = *queries_or;

  std::vector<ServeResult> results;
  ServeStats stats;
  LatencyReservoir latency;
  const Stopwatch watch;
  const Status s =
      server.ClassifyBatch(queries, pool, &results, &stats, &latency);
  const double seconds = watch.ElapsedSeconds();
  if (!s.ok()) {
    std::fprintf(stderr, "serving failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const LatencySummary lat = latency.Summarize();
  std::printf(
      "served %zu queries in %.3fs on %zu threads (%.0f queries/s): "
      "%llu core, %llu border, %llu noise; %llu exact, %llu cell hits; "
      "latency p50 %.1fus p99 %.1fus p999 %.1fus\n",
      queries.size(), seconds, threads,
      seconds > 0 ? static_cast<double>(queries.size()) / seconds : 0.0,
      static_cast<unsigned long long>(stats.core),
      static_cast<unsigned long long>(stats.border),
      static_cast<unsigned long long>(stats.noise),
      static_cast<unsigned long long>(stats.exact),
      static_cast<unsigned long long>(stats.cell_hits), lat.p50_us,
      lat.p99_us, lat.p999_us);

  if (!stats_json.empty()) {
    const Status w = WriteTextFile(
        stats_json, ServeStatsToJson(stats, seconds, threads, &lat));
    if (!w.ok()) {
      std::fprintf(stderr, "stats-json failed: %s\n", w.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", stats_json.c_str());
  }
  return WriteServeOutput(flags, queries, results);
}

/// JSON-safe double: the Hausdorff conventions yield +infinity when one
/// labeling has clusters and the other none, which JSON cannot carry.
std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// The `hierarchy` subcommand: run the multi-eps ladder (one shared
/// Phase I and cell dictionary, Phase II/III per rung with query_eps
/// decoupling and core-set seeding), optionally scoring a sampled-core
/// approximation against the exact ladder and freezing the finest rung as
/// a snapshot carrying the whole ladder in its hierarchy section.
int HierarchyMain(const FlagSet& flags) {
  auto data_or = LoadInput(flags);
  if (!data_or.ok()) {
    std::fprintf(stderr, "input error: %s\n%s",
                 data_or.status().ToString().c_str(), kUsage);
    return 1;
  }
  const Dataset& data = *data_or;
  std::fprintf(stderr, "loaded %zu points, %zu dimensions\n", data.size(),
               data.dim());

  const std::string levels_flag = flags.GetString("eps-levels");
  if (levels_flag.empty()) {
    std::fprintf(stderr, "hierarchy needs --eps-levels=E1,E2,...\n%s",
                 kUsage);
    return 1;
  }
  auto eps_or = ParseDoubleCsv(levels_flag, "--eps-levels");
  auto minpts_or = flags.GetInt("minpts", 20);
  auto rho_or = flags.GetDouble("rho", 0.01);
  auto parts_or = flags.GetInt("partitions", 16);
  auto threads_or = flags.GetInt("threads", 4);
  auto frac_or = flags.GetDouble("sampled-cores", 1.0);
  auto sample_seed_or = flags.GetInt("sample-seed", 0);
  for (const Status& s :
       {eps_or.status(), minpts_or.status(), rho_or.status(),
        parts_or.status(), threads_or.status(), frac_or.status(),
        sample_seed_or.status()}) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n%s", s.ToString().c_str(), kUsage);
      return 1;
    }
  }

  HierarchyOptions ho;
  ho.eps_levels = *eps_or;
  if (flags.Has("min-pts")) {
    auto mp_or = ParseSizeCsv(flags.GetString("min-pts"), "--min-pts");
    if (!mp_or.ok()) {
      std::fprintf(stderr, "%s\n%s", mp_or.status().ToString().c_str(),
                   kUsage);
      return 1;
    }
    ho.min_pts_levels = *mp_or;
  } else {
    ho.min_pts_levels = {static_cast<size_t>(*minpts_or)};
  }
  ho.rho = *rho_or;
  ho.num_partitions = static_cast<size_t>(*parts_or);
  ho.num_threads = static_cast<size_t>(*threads_or);
  ho.batched_queries = !flags.GetBool("perpoint");
  ho.stencil_queries = !flags.GetBool("tree-queries");
  ho.sorted_phase1 = !flags.GetBool("hashmap-phase1");
  ho.scalar_kernels = flags.GetBool("scalar-kernels");
  ho.quantized = flags.GetBool("quantized");
  ho.sequential_merge = flags.GetBool("sequential-merge");
  ho.force_probe = flags.GetBool("force-probe");
  ho.seed_from_previous = !flags.GetBool("no-seeding");
  ho.sampled_core_fraction = *frac_or;
  if (flags.Has("sample-seed")) {
    ho.core_sample_seed = static_cast<uint64_t>(*sample_seed_or);
  }
  const std::string save_snapshot = flags.GetString("save-snapshot");
  ho.capture_models = !save_snapshot.empty();

  auto h_or = BuildClusterHierarchy(data, ho);
  if (!h_or.ok()) {
    std::fprintf(stderr, "hierarchy failed: %s\n%s",
                 h_or.status().ToString().c_str(), kUsage);
    return 1;
  }
  ClusterHierarchy& h = *h_or;
  std::string forest_err;
  if (!h.ValidateForest(&forest_err)) {
    std::fprintf(stderr, "hierarchy forest invalid: %s\n",
                 forest_err.c_str());
    return 1;
  }
  std::printf(
      "ladder: %zu levels over %zu cells in %.3fs (shared phase1 %.3fs, "
      "dictionary %.3fs / %.1f MiB, broadcast %.3fs)\n",
      h.levels.size(), h.num_cells, h.total_seconds, h.phase1_seconds,
      h.dictionary_seconds,
      static_cast<double>(h.dictionary_bytes) / (1024.0 * 1024.0),
      h.broadcast_seconds);

  // --score: each level's labels against the exact ladder at the same
  // schedule. The exact reference is only rebuilt when this run actually
  // approximated (a fraction-1 run *is* the exact ladder).
  struct LevelScore {
    double nmi = 1.0;
    double rand_index = 1.0;
    ClusterHausdorffResult hausdorff;
  };
  std::vector<LevelScore> scores;
  if (flags.GetBool("score")) {
    const ClusterHierarchy* exact = &h;
    std::optional<ClusterHierarchy> exact_store;
    if (ho.sampled_core_fraction < 1.0) {
      HierarchyOptions eo = ho;
      eo.sampled_core_fraction = 1.0;
      eo.capture_models = false;
      auto exact_or = BuildClusterHierarchy(data, eo);
      if (!exact_or.ok()) {
        std::fprintf(stderr, "exact reference ladder failed: %s\n",
                     exact_or.status().ToString().c_str());
        return 1;
      }
      exact_store = std::move(*exact_or);
      exact = &*exact_store;
    }
    for (size_t i = 0; i < h.levels.size(); ++i) {
      const Labels& got = h.levels[i].labels;
      const Labels& want = exact->levels[i].labels;
      auto nmi = NormalizedMutualInformation(got, want);
      auto ri = RandIndex(got, want);
      auto haus = ClusterHausdorff(data, got, want);
      if (!nmi.ok() || !ri.ok() || !haus.ok()) {
        const Status& s =
            !nmi.ok() ? nmi.status()
                      : (!ri.ok() ? ri.status() : haus.status());
        std::fprintf(stderr, "scoring level %zu failed: %s\n", i,
                     s.ToString().c_str());
        return 1;
      }
      scores.push_back({*nmi, *ri, *haus});
    }
  }

  for (size_t i = 0; i < h.levels.size(); ++i) {
    const HierarchyLevel& lv = h.levels[i];
    std::printf(
        "level %zu: eps %g minpts %zu -> %zu clusters, %zu noise, "
        "%zu core cells%s; phase2 %.3fs merge %.3fs label %.3fs",
        i, lv.eps, lv.min_pts, lv.num_clusters, lv.num_noise_points,
        lv.num_core_cells, lv.seeded ? " (seeded)" : "",
        lv.phase2_seconds, lv.merge_seconds, lv.label_seconds);
    if (!scores.empty()) {
      std::printf(" | vs exact: NMI %.4f RI %.4f hausdorff max %g",
                  scores[i].nmi, scores[i].rand_index,
                  scores[i].hausdorff.max_distance);
    }
    std::printf("\n");
  }

  if (!save_snapshot.empty()) {
    // Freeze every rung, attach the ladder to the finest one and persist
    // it — the multi-level .rpsnap the serve subcommand loads.
    std::vector<ClusterModelSnapshot::HierarchyLevelInfo> lineage;
    std::optional<ClusterModelSnapshot> finest;
    for (size_t i = 0; i < h.levels.size(); ++i) {
      auto snap =
          ClusterModelSnapshot::FromModel(std::move(*h.levels[i].model));
      if (!snap.ok()) {
        std::fprintf(stderr, "freezing level %zu failed: %s\n", i,
                     snap.status().ToString().c_str());
        return 1;
      }
      ClusterModelSnapshot::HierarchyLevelInfo info;
      info.eps = h.levels[i].eps;
      info.min_pts = h.levels[i].min_pts;
      info.cell_cluster = snap->cell_cluster();
      info.parent = h.levels[i].parent;
      lineage.push_back(std::move(info));
      if (i == 0) finest = std::move(*snap);
    }
    finest->set_hierarchy(std::move(lineage));
    const Status w = finest->WriteFile(save_snapshot);
    if (!w.ok()) {
      std::fprintf(stderr, "snapshot write failed: %s\n",
                   w.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "wrote snapshot %s (finest level + %zu-level ladder)\n",
                 save_snapshot.c_str(), h.levels.size());
  }

  const std::string stats_json = flags.GetString("stats-json");
  if (!stats_json.empty()) {
    std::string json = "{\n";
    json += "  \"command\": \"hierarchy\",\n";
    json += "  \"num_points\": " + std::to_string(data.size()) + ",\n";
    json += "  \"dim\": " + std::to_string(data.dim()) + ",\n";
    json += "  \"num_levels\": " + std::to_string(h.levels.size()) + ",\n";
    json += "  \"sampled_core_fraction\": " +
            JsonDouble(ho.sampled_core_fraction) + ",\n";
    json += std::string("  \"force_probe\": ") +
            (ho.force_probe ? "true" : "false") + ",\n";
    json += std::string("  \"seed_from_previous\": ") +
            (ho.seed_from_previous ? "true" : "false") + ",\n";
    json += "  \"phase1_seconds\": " + JsonDouble(h.phase1_seconds) + ",\n";
    json += "  \"dictionary_seconds\": " + JsonDouble(h.dictionary_seconds) +
            ",\n";
    json += "  \"broadcast_seconds\": " + JsonDouble(h.broadcast_seconds) +
            ",\n";
    json += "  \"total_seconds\": " + JsonDouble(h.total_seconds) + ",\n";
    json += "  \"num_cells\": " + std::to_string(h.num_cells) + ",\n";
    json += "  \"dictionary_bytes\": " + std::to_string(h.dictionary_bytes) +
            ",\n";
    json += "  \"levels\": [\n";
    for (size_t i = 0; i < h.levels.size(); ++i) {
      const HierarchyLevel& lv = h.levels[i];
      json += "    {\"eps\": " + JsonDouble(lv.eps) +
              ", \"min_pts\": " + std::to_string(lv.min_pts) +
              ", \"num_clusters\": " + std::to_string(lv.num_clusters) +
              ", \"num_noise_points\": " +
              std::to_string(lv.num_noise_points) +
              ", \"num_core_cells\": " + std::to_string(lv.num_core_cells) +
              ", \"containment_violations\": " +
              std::to_string(lv.containment_violations) +
              std::string(", \"seeded\": ") + (lv.seeded ? "true" : "false") +
              ", \"phase2_seconds\": " + JsonDouble(lv.phase2_seconds) +
              ", \"merge_seconds\": " + JsonDouble(lv.merge_seconds) +
              ", \"label_seconds\": " + JsonDouble(lv.label_seconds);
      if (!scores.empty()) {
        json += ", \"nmi_vs_exact\": " + JsonDouble(scores[i].nmi) +
                ", \"rand_index_vs_exact\": " +
                JsonDouble(scores[i].rand_index) +
                ", \"hausdorff_max_vs_exact\": " +
                JsonDouble(scores[i].hausdorff.max_distance) +
                ", \"hausdorff_mean_vs_exact\": " +
                JsonDouble(scores[i].hausdorff.mean_distance);
      }
      json += "}";
      json += i + 1 < h.levels.size() ? ",\n" : "\n";
    }
    json += "  ]\n}";
    const Status w = WriteTextFile(stats_json, json);
    if (!w.ok()) {
      std::fprintf(stderr, "stats-json failed: %s\n", w.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", stats_json.c_str());
  }

  const std::string output = flags.GetString("output");
  if (!output.empty()) {
    const Status s = WriteCsv(output, data, &h.levels[0].labels);
    if (!s.ok()) {
      std::fprintf(stderr, "output failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (finest-level labels)\n", output.c_str());
  }
  return 0;
}

/// The `stream` subcommand: replay the input as a seed set plus ingested
/// batches through the incremental re-clusterer, publishing each epoch as
/// a versioned snapshot into the EpochRegistry hot-swap slot (and
/// optionally onto disk). With --audit, every published snapshot is also
/// checked against a from-scratch RunRpDbscan on the accumulated points —
/// the strongest per-epoch correctness gate the repo has.
int StreamMain(const FlagSet& flags) {
  auto data_or = LoadInput(flags);
  if (!data_or.ok()) {
    std::fprintf(stderr, "input error: %s\n%s",
                 data_or.status().ToString().c_str(), kUsage);
    return 1;
  }
  const Dataset& data = *data_or;
  std::fprintf(stderr, "loaded %zu points, %zu dimensions\n", data.size(),
               data.dim());

  auto opts_or = RpOptionsFromFlags(flags);
  auto seedpts_or = flags.GetInt("seed-points", 0);
  auto batch_or = flags.GetInt("batch-size", 0);
  auto every_or = flags.GetInt("epoch-every", 1);
  if (!opts_or.ok() || !seedpts_or.ok() || !batch_or.ok() ||
      !every_or.ok()) {
    const Status& s = !opts_or.ok()
                          ? opts_or.status()
                          : (!seedpts_or.ok()
                                 ? seedpts_or.status()
                                 : (!batch_or.ok() ? batch_or.status()
                                                   : every_or.status()));
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(), kUsage);
    return 1;
  }
  size_t seed_points = *seedpts_or > 0
                           ? std::min(static_cast<size_t>(*seedpts_or),
                                      data.size())
                           : data.size() / 2;
  if (seed_points == 0) seed_points = data.size();
  const size_t remaining = data.size() - seed_points;
  const size_t batch_size =
      *batch_or > 0 ? static_cast<size_t>(*batch_or)
                    : std::max<size_t>(1, (remaining + 7) / 8);
  const size_t epoch_every =
      *every_or > 0 ? static_cast<size_t>(*every_or) : size_t{1};
  const bool audit_epochs = opts_or->audit_level != AuditLevel::kOff;

  Dataset seed(data.dim());
  seed.Reserve(seed_points);
  for (size_t i = 0; i < seed_points; ++i) seed.Append(data.point(i));
  auto clusterer_or = StreamClusterer::Create(std::move(seed), *opts_or);
  if (!clusterer_or.ok()) {
    std::fprintf(stderr, "stream setup failed: %s\n",
                 clusterer_or.status().ToString().c_str());
    return 1;
  }
  StreamClusterer clusterer = std::move(*clusterer_or);

  LabelServerOptions sopts;
  sopts.exact_border = !flags.GetBool("approx-border");
  EpochRegistry registry(sopts, flags.GetString("epoch-dir"));

  Labels last_labels;
  std::string epochs_json;
  // Publishes one epoch: recompute + splice, hot-swap into the registry,
  // optional against-run audit, one stdout line, one JSON record.
  auto publish = [&]() -> int {
    auto epoch_or = clusterer.PublishEpoch();
    if (!epoch_or.ok()) {
      std::fprintf(stderr, "epoch publish failed: %s\n",
                   epoch_or.status().ToString().c_str());
      return 1;
    }
    const EpochStats st = epoch_or->stats;
    last_labels = std::move(epoch_or->labels);
    auto published_or = registry.Publish(std::move(epoch_or->snapshot));
    if (!published_or.ok()) {
      std::fprintf(stderr, "epoch swap failed: %s\n",
                   published_or.status().ToString().c_str());
      return 1;
    }
    const PublishedEpoch& published = **published_or;
    const char* audit_note = "skipped";
    if (audit_epochs) {
      const AuditReport report = AuditSnapshotAgainstRun(
          *published.snapshot, clusterer.data(), clusterer.options());
      if (!report.ok()) {
        std::fprintf(stderr, "epoch %llu against-run audit FAILED: %s\n",
                     static_cast<unsigned long long>(st.sequence),
                     report.ToString().c_str());
        return 1;
      }
      audit_note = "pass";
    }
    std::printf(
        "epoch %llu: %zu points in %zu cells, %zu batches; %zu touched -> "
        "%zu dirty cells (stencil %s), %zu points reclustered, %zu rekeys; "
        "%zu clusters, %zu noise; published in %.3fs%s%s [audit %s]\n",
        static_cast<unsigned long long>(st.sequence), st.total_points,
        st.total_cells, st.batches_ingested, st.touched_cells,
        st.dirty_cells, st.dirty_used_stencil ? "on" : "off",
        st.reclustered_points, st.rekeys, st.num_clusters,
        st.num_noise_points, st.epoch_publish_seconds,
        published.path.empty() ? "" : " -> ",
        published.path.c_str(), audit_note);
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"sequence\": %llu, \"total_points\": %zu, "
        "\"total_cells\": %zu, \"batches_ingested\": %zu, "
        "\"touched_cells\": %zu, \"dirty_cells\": %zu, "
        "\"dirty_used_stencil\": %s, \"reclustered_points\": %zu, "
        "\"rekeys\": %zu, \"num_clusters\": %zu, "
        "\"num_noise_points\": %zu, \"epoch_publish_seconds\": %.6f, "
        "\"audit\": \"%s\"}",
        static_cast<unsigned long long>(st.sequence), st.total_points,
        st.total_cells, st.batches_ingested, st.touched_cells,
        st.dirty_cells, st.dirty_used_stencil ? "true" : "false",
        st.reclustered_points, st.rekeys, st.num_clusters,
        st.num_noise_points, st.epoch_publish_seconds, audit_note);
    if (!epochs_json.empty()) epochs_json += ",\n";
    epochs_json += buf;
    return 0;
  };

  // Epoch 0 is the seed set (everything dirty), then the batch replay.
  if (publish() != 0) return 1;
  size_t pos = seed_points;
  size_t batches_since_epoch = 0;
  while (pos < data.size()) {
    const size_t take = std::min(batch_size, data.size() - pos);
    Dataset batch(data.dim());
    batch.Reserve(take);
    for (size_t i = 0; i < take; ++i) batch.Append(data.point(pos + i));
    pos += take;
    const Status s = clusterer.Ingest(batch);
    if (!s.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
      return 1;
    }
    if (++batches_since_epoch >= epoch_every) {
      batches_since_epoch = 0;
      if (publish() != 0) return 1;
    }
  }
  if (batches_since_epoch > 0 && publish() != 0) return 1;

  std::printf("stream done: %llu epochs, current sequence %lld\n",
              static_cast<unsigned long long>(clusterer.next_sequence()),
              static_cast<long long>(registry.CurrentSequence()));

  const std::string stats_json = flags.GetString("stats-json");
  if (!stats_json.empty()) {
    std::string json = "{\n";
    json += "  \"command\": \"stream\",\n";
    json += "  \"total_points\": " + std::to_string(data.size()) + ",\n";
    json += "  \"seed_points\": " + std::to_string(seed_points) + ",\n";
    json += "  \"batch_size\": " + std::to_string(batch_size) + ",\n";
    json += "  \"epoch_every\": " + std::to_string(epoch_every) + ",\n";
    json += "  \"epochs_published\": " +
            std::to_string(clusterer.next_sequence()) + ",\n";
    json += "  \"epochs\": [\n" + epochs_json + "\n  ]\n}";
    const Status w = WriteTextFile(stats_json, json);
    if (!w.ok()) {
      std::fprintf(stderr, "stats-json failed: %s\n", w.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", stats_json.c_str());
  }

  const std::string output = flags.GetString("output");
  if (!output.empty()) {
    const Status s = WriteCsv(output, clusterer.data(), &last_labels);
    if (!s.ok()) {
      std::fprintf(stderr, "output failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", output.c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  auto flags_or = FlagSet::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 1;
  }
  const FlagSet& flags = *flags_or;
  if (flags.GetBool("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (!flags.positional().empty()) {
    if (flags.positional().front() == "serve") return ServeMain(flags);
    if (flags.positional().front() == "stream") return StreamMain(flags);
    if (flags.positional().front() == "hierarchy") {
      return HierarchyMain(flags);
    }
    std::fprintf(stderr, "unknown subcommand: %s\n%s",
                 flags.positional().front().c_str(), kUsage);
    return 1;
  }
  // --mmap maps the .rpds payload read-only and hands the pipeline a
  // borrowed (zero-copy) view plus the PointSource for the out-of-core
  // Phase I-1; everything downstream of LoadInput is unchanged.  The
  // mapping is read-only, so flags that mutate the dataset in place are
  // rejected up front instead of faulting later.
  std::optional<MmapDataset> mmap_source;
  auto data_or = [&]() -> StatusOr<Dataset> {
    if (!flags.GetBool("mmap")) return LoadInput(flags);
    const std::string input = flags.GetString("input");
    if (input.size() < 5 || input.substr(input.size() - 5) != ".rpds") {
      return Status::InvalidArgument("--mmap requires an .rpds --input");
    }
    if (!flags.GetString("generate").empty()) {
      return Status::InvalidArgument("--input and --generate are exclusive");
    }
    if (!flags.GetString("normalize").empty()) {
      return Status::InvalidArgument(
          "--normalize mutates points in place; it cannot be combined "
          "with the read-only --mmap input");
    }
    auto source_or = MmapDataset::Open(input);
    if (!source_or.ok()) return source_or.status();
    mmap_source.emplace(std::move(*source_or));
    return mmap_source->BorrowedView();
  }();
  if (!data_or.ok()) {
    std::fprintf(stderr, "input error: %s\n%s",
                 data_or.status().ToString().c_str(), kUsage);
    return 1;
  }
  Dataset& data = *data_or;
  std::fprintf(stderr, "loaded %zu points, %zu dimensions%s\n", data.size(),
               data.dim(), mmap_source ? " (mmap)" : "");

  const std::string normalize = flags.GetString("normalize");
  if (!normalize.empty()) {
    StatusOr<AffineTransform> t =
        normalize == "minmax"
            ? FitMinMax(data, 0.0, 100.0)
            : (normalize == "zscore"
                   ? FitStandardize(data)
                   : Status::InvalidArgument("unknown --normalize mode: " +
                                             normalize));
    if (!t.ok() || !ApplyTransform(*t, &data).ok()) {
      std::fprintf(stderr, "normalize failed: %s\n",
                   t.ok() ? "apply error" : t.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "normalized (%s)\n", normalize.c_str());
  }

  // k-distance diagnostic: the knee of the sorted k-NN distance curve is
  // the classic eps choice (the paper picks eps empirically; this tool
  // shows the candidate range).
  auto kdist_or = flags.GetInt("kdist", 0);
  if (!kdist_or.ok()) {
    std::fprintf(stderr, "%s\n", kdist_or.status().ToString().c_str());
    return 1;
  }
  if (*kdist_or > 0) {
    const size_t k = static_cast<size_t>(*kdist_or);
    KdTree tree;
    tree.Build(data.raw(), data.size(), data.dim());
    Rng rng(1);
    const size_t sample =
        data.size() < 20000 ? data.size() : static_cast<size_t>(20000);
    std::vector<double> kdist;
    kdist.reserve(sample);
    for (size_t s = 0; s < sample; ++s) {
      const size_t i = sample == data.size()
                           ? s
                           : static_cast<size_t>(rng.Uniform(data.size()));
      const auto knn = tree.KNearest(data.point(i), k + 1);  // incl. self
      if (knn.size() > k) kdist.push_back(std::sqrt(knn[k].first));
    }
    std::sort(kdist.begin(), kdist.end());
    std::printf("%zu-NN distance quantiles over %zu sampled points:\n", k,
                kdist.size());
    for (const double q : {0.50, 0.75, 0.90, 0.95, 0.99}) {
      const size_t idx = static_cast<size_t>(q * (kdist.size() - 1));
      std::printf("  p%-4.0f %.6g\n", q * 100, kdist[idx]);
    }
    std::printf(
        "pick eps near the knee (p90-p95) with minPts ~ %zu\n", k + 1);
    return 0;
  }

  const std::string convert = flags.GetString("convert");
  if (!convert.empty()) {
    const Status s = WriteBinary(convert, data);
    if (!s.ok()) {
      std::fprintf(stderr, "convert failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", convert.c_str());
    return 0;
  }

  auto labels_or =
      Cluster(flags, data, flags.GetBool("stats"),
              mmap_source ? &*mmap_source : nullptr);
  if (!labels_or.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n%s",
                 labels_or.status().ToString().c_str(), kUsage);
    return 1;
  }
  const Labels& labels = *labels_or;
  std::printf("%s\n", Summarize(labels).ToString().c_str());

  const std::string output = flags.GetString("output");
  if (!output.empty()) {
    const Status s = WriteCsv(output, data, &labels);
    if (!s.ok()) {
      std::fprintf(stderr, "output failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", output.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace rpdbscan

int main(int argc, char** argv) { return rpdbscan::Main(argc, argv); }
