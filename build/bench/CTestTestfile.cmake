# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(run_bench_smoke "bash" "/root/repo/bench/../tools/run_bench.sh" "--smoke" "/root/repo/build" "/root/repo/build/BENCH_phase2_smoke.json")
set_tests_properties(run_bench_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
