file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_edges.dir/bench_fig17_edges.cc.o"
  "CMakeFiles/bench_fig17_edges.dir/bench_fig17_edges.cc.o.d"
  "bench_fig17_edges"
  "bench_fig17_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
