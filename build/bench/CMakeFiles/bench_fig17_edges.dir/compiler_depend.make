# Empty compiler generated dependencies file for bench_fig17_edges.
# This may be replaced when dependencies are built.
