# Empty dependencies file for bench_table5_dictsize.
# This may be replaced when dependencies are built.
