file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_dictsize.dir/bench_table5_dictsize.cc.o"
  "CMakeFiles/bench_table5_dictsize.dir/bench_table5_dictsize.cc.o.d"
  "bench_table5_dictsize"
  "bench_table5_dictsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_dictsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
