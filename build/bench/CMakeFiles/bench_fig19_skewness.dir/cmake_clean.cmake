file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_skewness.dir/bench_fig19_skewness.cc.o"
  "CMakeFiles/bench_fig19_skewness.dir/bench_fig19_skewness.cc.o.d"
  "bench_fig19_skewness"
  "bench_fig19_skewness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_skewness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
