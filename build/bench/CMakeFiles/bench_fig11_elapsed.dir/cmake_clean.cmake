file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_elapsed.dir/bench_fig11_elapsed.cc.o"
  "CMakeFiles/bench_fig11_elapsed.dir/bench_fig11_elapsed.cc.o.d"
  "bench_fig11_elapsed"
  "bench_fig11_elapsed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_elapsed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
