# Empty dependencies file for bench_fig11_elapsed.
# This may be replaced when dependencies are built.
