file(REMOVE_RECURSE
  "CMakeFiles/bench_naive_accuracy.dir/bench_naive_accuracy.cc.o"
  "CMakeFiles/bench_naive_accuracy.dir/bench_naive_accuracy.cc.o.d"
  "bench_naive_accuracy"
  "bench_naive_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_naive_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
