# Empty dependencies file for bench_naive_accuracy.
# This may be replaced when dependencies are built.
