# Empty dependencies file for bench_fig20_datasize.
# This may be replaced when dependencies are built.
