file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_datasize.dir/bench_fig20_datasize.cc.o"
  "CMakeFiles/bench_fig20_datasize.dir/bench_fig20_datasize.cc.o.d"
  "bench_fig20_datasize"
  "bench_fig20_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
