file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_duplication.dir/bench_fig14_duplication.cc.o"
  "CMakeFiles/bench_fig14_duplication.dir/bench_fig14_duplication.cc.o.d"
  "bench_fig14_duplication"
  "bench_fig14_duplication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_duplication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
