# Empty dependencies file for bench_fig14_duplication.
# This may be replaced when dependencies are built.
