# Empty dependencies file for rp_graph.
# This may be replaced when dependencies are built.
