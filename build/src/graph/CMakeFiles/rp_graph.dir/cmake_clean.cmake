file(REMOVE_RECURSE
  "CMakeFiles/rp_graph.dir/disjoint_set.cc.o"
  "CMakeFiles/rp_graph.dir/disjoint_set.cc.o.d"
  "librp_graph.a"
  "librp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
