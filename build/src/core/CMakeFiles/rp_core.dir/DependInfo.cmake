
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cell_dictionary.cc" "src/core/CMakeFiles/rp_core.dir/cell_dictionary.cc.o" "gcc" "src/core/CMakeFiles/rp_core.dir/cell_dictionary.cc.o.d"
  "/root/repo/src/core/cell_set.cc" "src/core/CMakeFiles/rp_core.dir/cell_set.cc.o" "gcc" "src/core/CMakeFiles/rp_core.dir/cell_set.cc.o.d"
  "/root/repo/src/core/grid.cc" "src/core/CMakeFiles/rp_core.dir/grid.cc.o" "gcc" "src/core/CMakeFiles/rp_core.dir/grid.cc.o.d"
  "/root/repo/src/core/labeling.cc" "src/core/CMakeFiles/rp_core.dir/labeling.cc.o" "gcc" "src/core/CMakeFiles/rp_core.dir/labeling.cc.o.d"
  "/root/repo/src/core/merge.cc" "src/core/CMakeFiles/rp_core.dir/merge.cc.o" "gcc" "src/core/CMakeFiles/rp_core.dir/merge.cc.o.d"
  "/root/repo/src/core/phase2.cc" "src/core/CMakeFiles/rp_core.dir/phase2.cc.o" "gcc" "src/core/CMakeFiles/rp_core.dir/phase2.cc.o.d"
  "/root/repo/src/core/rp_dbscan.cc" "src/core/CMakeFiles/rp_core.dir/rp_dbscan.cc.o" "gcc" "src/core/CMakeFiles/rp_core.dir/rp_dbscan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/rp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/rp_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rp_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
