file(REMOVE_RECURSE
  "CMakeFiles/rp_core.dir/cell_dictionary.cc.o"
  "CMakeFiles/rp_core.dir/cell_dictionary.cc.o.d"
  "CMakeFiles/rp_core.dir/cell_set.cc.o"
  "CMakeFiles/rp_core.dir/cell_set.cc.o.d"
  "CMakeFiles/rp_core.dir/grid.cc.o"
  "CMakeFiles/rp_core.dir/grid.cc.o.d"
  "CMakeFiles/rp_core.dir/labeling.cc.o"
  "CMakeFiles/rp_core.dir/labeling.cc.o.d"
  "CMakeFiles/rp_core.dir/merge.cc.o"
  "CMakeFiles/rp_core.dir/merge.cc.o.d"
  "CMakeFiles/rp_core.dir/phase2.cc.o"
  "CMakeFiles/rp_core.dir/phase2.cc.o.d"
  "CMakeFiles/rp_core.dir/rp_dbscan.cc.o"
  "CMakeFiles/rp_core.dir/rp_dbscan.cc.o.d"
  "librp_core.a"
  "librp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
