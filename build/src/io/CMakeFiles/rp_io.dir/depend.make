# Empty dependencies file for rp_io.
# This may be replaced when dependencies are built.
