
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/binary.cc" "src/io/CMakeFiles/rp_io.dir/binary.cc.o" "gcc" "src/io/CMakeFiles/rp_io.dir/binary.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/io/CMakeFiles/rp_io.dir/csv.cc.o" "gcc" "src/io/CMakeFiles/rp_io.dir/csv.cc.o.d"
  "/root/repo/src/io/dataset.cc" "src/io/CMakeFiles/rp_io.dir/dataset.cc.o" "gcc" "src/io/CMakeFiles/rp_io.dir/dataset.cc.o.d"
  "/root/repo/src/io/svg_scatter.cc" "src/io/CMakeFiles/rp_io.dir/svg_scatter.cc.o" "gcc" "src/io/CMakeFiles/rp_io.dir/svg_scatter.cc.o.d"
  "/root/repo/src/io/transforms.cc" "src/io/CMakeFiles/rp_io.dir/transforms.cc.o" "gcc" "src/io/CMakeFiles/rp_io.dir/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
