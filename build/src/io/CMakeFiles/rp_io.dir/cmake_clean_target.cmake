file(REMOVE_RECURSE
  "librp_io.a"
)
