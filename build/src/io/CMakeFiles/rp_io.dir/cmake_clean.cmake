file(REMOVE_RECURSE
  "CMakeFiles/rp_io.dir/binary.cc.o"
  "CMakeFiles/rp_io.dir/binary.cc.o.d"
  "CMakeFiles/rp_io.dir/csv.cc.o"
  "CMakeFiles/rp_io.dir/csv.cc.o.d"
  "CMakeFiles/rp_io.dir/dataset.cc.o"
  "CMakeFiles/rp_io.dir/dataset.cc.o.d"
  "CMakeFiles/rp_io.dir/svg_scatter.cc.o"
  "CMakeFiles/rp_io.dir/svg_scatter.cc.o.d"
  "CMakeFiles/rp_io.dir/transforms.cc.o"
  "CMakeFiles/rp_io.dir/transforms.cc.o.d"
  "librp_io.a"
  "librp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
