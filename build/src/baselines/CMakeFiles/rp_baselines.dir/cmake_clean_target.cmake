file(REMOVE_RECURSE
  "librp_baselines.a"
)
