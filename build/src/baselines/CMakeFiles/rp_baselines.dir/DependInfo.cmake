
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/exact_dbscan.cc" "src/baselines/CMakeFiles/rp_baselines.dir/exact_dbscan.cc.o" "gcc" "src/baselines/CMakeFiles/rp_baselines.dir/exact_dbscan.cc.o.d"
  "/root/repo/src/baselines/grid_dbscan.cc" "src/baselines/CMakeFiles/rp_baselines.dir/grid_dbscan.cc.o" "gcc" "src/baselines/CMakeFiles/rp_baselines.dir/grid_dbscan.cc.o.d"
  "/root/repo/src/baselines/local_dbscan.cc" "src/baselines/CMakeFiles/rp_baselines.dir/local_dbscan.cc.o" "gcc" "src/baselines/CMakeFiles/rp_baselines.dir/local_dbscan.cc.o.d"
  "/root/repo/src/baselines/naive_random_split.cc" "src/baselines/CMakeFiles/rp_baselines.dir/naive_random_split.cc.o" "gcc" "src/baselines/CMakeFiles/rp_baselines.dir/naive_random_split.cc.o.d"
  "/root/repo/src/baselines/ng_dbscan.cc" "src/baselines/CMakeFiles/rp_baselines.dir/ng_dbscan.cc.o" "gcc" "src/baselines/CMakeFiles/rp_baselines.dir/ng_dbscan.cc.o.d"
  "/root/repo/src/baselines/region_split.cc" "src/baselines/CMakeFiles/rp_baselines.dir/region_split.cc.o" "gcc" "src/baselines/CMakeFiles/rp_baselines.dir/region_split.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/rp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/rp_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rp_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
