# Empty compiler generated dependencies file for rp_baselines.
# This may be replaced when dependencies are built.
