file(REMOVE_RECURSE
  "CMakeFiles/rp_baselines.dir/exact_dbscan.cc.o"
  "CMakeFiles/rp_baselines.dir/exact_dbscan.cc.o.d"
  "CMakeFiles/rp_baselines.dir/grid_dbscan.cc.o"
  "CMakeFiles/rp_baselines.dir/grid_dbscan.cc.o.d"
  "CMakeFiles/rp_baselines.dir/local_dbscan.cc.o"
  "CMakeFiles/rp_baselines.dir/local_dbscan.cc.o.d"
  "CMakeFiles/rp_baselines.dir/naive_random_split.cc.o"
  "CMakeFiles/rp_baselines.dir/naive_random_split.cc.o.d"
  "CMakeFiles/rp_baselines.dir/ng_dbscan.cc.o"
  "CMakeFiles/rp_baselines.dir/ng_dbscan.cc.o.d"
  "CMakeFiles/rp_baselines.dir/region_split.cc.o"
  "CMakeFiles/rp_baselines.dir/region_split.cc.o.d"
  "librp_baselines.a"
  "librp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
