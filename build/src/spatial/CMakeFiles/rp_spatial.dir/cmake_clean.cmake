file(REMOVE_RECURSE
  "CMakeFiles/rp_spatial.dir/kdtree.cc.o"
  "CMakeFiles/rp_spatial.dir/kdtree.cc.o.d"
  "CMakeFiles/rp_spatial.dir/rtree.cc.o"
  "CMakeFiles/rp_spatial.dir/rtree.cc.o.d"
  "librp_spatial.a"
  "librp_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
