file(REMOVE_RECURSE
  "librp_spatial.a"
)
