# Empty compiler generated dependencies file for rp_spatial.
# This may be replaced when dependencies are built.
