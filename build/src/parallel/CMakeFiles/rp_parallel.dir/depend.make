# Empty dependencies file for rp_parallel.
# This may be replaced when dependencies are built.
