file(REMOVE_RECURSE
  "CMakeFiles/rp_parallel.dir/cluster_model.cc.o"
  "CMakeFiles/rp_parallel.dir/cluster_model.cc.o.d"
  "CMakeFiles/rp_parallel.dir/thread_pool.cc.o"
  "CMakeFiles/rp_parallel.dir/thread_pool.cc.o.d"
  "librp_parallel.a"
  "librp_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
