file(REMOVE_RECURSE
  "librp_parallel.a"
)
