file(REMOVE_RECURSE
  "librp_synth.a"
)
