file(REMOVE_RECURSE
  "CMakeFiles/rp_synth.dir/generators.cc.o"
  "CMakeFiles/rp_synth.dir/generators.cc.o.d"
  "librp_synth.a"
  "librp_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
