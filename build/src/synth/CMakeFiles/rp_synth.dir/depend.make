# Empty dependencies file for rp_synth.
# This may be replaced when dependencies are built.
