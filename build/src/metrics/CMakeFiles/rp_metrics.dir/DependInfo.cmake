
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/cluster_stats.cc" "src/metrics/CMakeFiles/rp_metrics.dir/cluster_stats.cc.o" "gcc" "src/metrics/CMakeFiles/rp_metrics.dir/cluster_stats.cc.o.d"
  "/root/repo/src/metrics/nmi.cc" "src/metrics/CMakeFiles/rp_metrics.dir/nmi.cc.o" "gcc" "src/metrics/CMakeFiles/rp_metrics.dir/nmi.cc.o.d"
  "/root/repo/src/metrics/rand_index.cc" "src/metrics/CMakeFiles/rp_metrics.dir/rand_index.cc.o" "gcc" "src/metrics/CMakeFiles/rp_metrics.dir/rand_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/rp_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
