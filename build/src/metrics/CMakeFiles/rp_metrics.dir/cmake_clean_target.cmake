file(REMOVE_RECURSE
  "librp_metrics.a"
)
