file(REMOVE_RECURSE
  "CMakeFiles/rp_metrics.dir/cluster_stats.cc.o"
  "CMakeFiles/rp_metrics.dir/cluster_stats.cc.o.d"
  "CMakeFiles/rp_metrics.dir/nmi.cc.o"
  "CMakeFiles/rp_metrics.dir/nmi.cc.o.d"
  "CMakeFiles/rp_metrics.dir/rand_index.cc.o"
  "CMakeFiles/rp_metrics.dir/rand_index.cc.o.d"
  "librp_metrics.a"
  "librp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
