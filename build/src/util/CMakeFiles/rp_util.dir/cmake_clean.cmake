file(REMOVE_RECURSE
  "CMakeFiles/rp_util.dir/flags.cc.o"
  "CMakeFiles/rp_util.dir/flags.cc.o.d"
  "CMakeFiles/rp_util.dir/status.cc.o"
  "CMakeFiles/rp_util.dir/status.cc.o.d"
  "librp_util.a"
  "librp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
