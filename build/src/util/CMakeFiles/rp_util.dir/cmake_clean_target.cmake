file(REMOVE_RECURSE
  "librp_util.a"
)
