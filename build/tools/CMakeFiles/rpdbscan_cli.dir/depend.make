# Empty dependencies file for rpdbscan_cli.
# This may be replaced when dependencies are built.
