file(REMOVE_RECURSE
  "CMakeFiles/rpdbscan_cli.dir/rpdbscan_cli.cc.o"
  "CMakeFiles/rpdbscan_cli.dir/rpdbscan_cli.cc.o.d"
  "rpdbscan_cli"
  "rpdbscan_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpdbscan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
