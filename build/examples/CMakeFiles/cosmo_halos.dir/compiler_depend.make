# Empty compiler generated dependencies file for cosmo_halos.
# This may be replaced when dependencies are built.
