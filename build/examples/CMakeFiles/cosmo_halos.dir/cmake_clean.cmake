file(REMOVE_RECURSE
  "CMakeFiles/cosmo_halos.dir/cosmo_halos.cpp.o"
  "CMakeFiles/cosmo_halos.dir/cosmo_halos.cpp.o.d"
  "cosmo_halos"
  "cosmo_halos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_halos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
