# Empty dependencies file for geolife_hotspots.
# This may be replaced when dependencies are built.
