file(REMOVE_RECURSE
  "CMakeFiles/geolife_hotspots.dir/geolife_hotspots.cpp.o"
  "CMakeFiles/geolife_hotspots.dir/geolife_hotspots.cpp.o.d"
  "geolife_hotspots"
  "geolife_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolife_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
