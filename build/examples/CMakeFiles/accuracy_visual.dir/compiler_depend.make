# Empty compiler generated dependencies file for accuracy_visual.
# This may be replaced when dependencies are built.
