file(REMOVE_RECURSE
  "CMakeFiles/accuracy_visual.dir/accuracy_visual.cpp.o"
  "CMakeFiles/accuracy_visual.dir/accuracy_visual.cpp.o.d"
  "accuracy_visual"
  "accuracy_visual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_visual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
