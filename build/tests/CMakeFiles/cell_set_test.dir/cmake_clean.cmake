file(REMOVE_RECURSE
  "CMakeFiles/cell_set_test.dir/cell_set_test.cc.o"
  "CMakeFiles/cell_set_test.dir/cell_set_test.cc.o.d"
  "cell_set_test"
  "cell_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
