
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cell_set_test.cc" "tests/CMakeFiles/cell_set_test.dir/cell_set_test.cc.o" "gcc" "tests/CMakeFiles/cell_set_test.dir/cell_set_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/rp_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/rp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/rp_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
