file(REMOVE_RECURSE
  "CMakeFiles/dictionary_codec_test.dir/dictionary_codec_test.cc.o"
  "CMakeFiles/dictionary_codec_test.dir/dictionary_codec_test.cc.o.d"
  "dictionary_codec_test"
  "dictionary_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dictionary_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
