file(REMOVE_RECURSE
  "CMakeFiles/phase2_test.dir/phase2_test.cc.o"
  "CMakeFiles/phase2_test.dir/phase2_test.cc.o.d"
  "phase2_test"
  "phase2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
