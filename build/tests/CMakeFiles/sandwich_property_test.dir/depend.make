# Empty dependencies file for sandwich_property_test.
# This may be replaced when dependencies are built.
