file(REMOVE_RECURSE
  "CMakeFiles/sandwich_property_test.dir/sandwich_property_test.cc.o"
  "CMakeFiles/sandwich_property_test.dir/sandwich_property_test.cc.o.d"
  "sandwich_property_test"
  "sandwich_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandwich_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
