file(REMOVE_RECURSE
  "CMakeFiles/cell_dictionary_test.dir/cell_dictionary_test.cc.o"
  "CMakeFiles/cell_dictionary_test.dir/cell_dictionary_test.cc.o.d"
  "cell_dictionary_test"
  "cell_dictionary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_dictionary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
