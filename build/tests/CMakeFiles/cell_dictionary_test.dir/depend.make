# Empty dependencies file for cell_dictionary_test.
# This may be replaced when dependencies are built.
