file(REMOVE_RECURSE
  "CMakeFiles/nmi_test.dir/nmi_test.cc.o"
  "CMakeFiles/nmi_test.dir/nmi_test.cc.o.d"
  "nmi_test"
  "nmi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
