# Empty dependencies file for nmi_test.
# This may be replaced when dependencies are built.
