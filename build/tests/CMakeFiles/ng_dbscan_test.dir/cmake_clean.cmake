file(REMOVE_RECURSE
  "CMakeFiles/ng_dbscan_test.dir/ng_dbscan_test.cc.o"
  "CMakeFiles/ng_dbscan_test.dir/ng_dbscan_test.cc.o.d"
  "ng_dbscan_test"
  "ng_dbscan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ng_dbscan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
