# Empty compiler generated dependencies file for ng_dbscan_test.
# This may be replaced when dependencies are built.
