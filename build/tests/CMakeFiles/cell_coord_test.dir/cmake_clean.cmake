file(REMOVE_RECURSE
  "CMakeFiles/cell_coord_test.dir/cell_coord_test.cc.o"
  "CMakeFiles/cell_coord_test.dir/cell_coord_test.cc.o.d"
  "cell_coord_test"
  "cell_coord_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_coord_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
