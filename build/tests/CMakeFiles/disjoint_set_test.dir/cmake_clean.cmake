file(REMOVE_RECURSE
  "CMakeFiles/disjoint_set_test.dir/disjoint_set_test.cc.o"
  "CMakeFiles/disjoint_set_test.dir/disjoint_set_test.cc.o.d"
  "disjoint_set_test"
  "disjoint_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disjoint_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
