# Empty compiler generated dependencies file for disjoint_set_test.
# This may be replaced when dependencies are built.
