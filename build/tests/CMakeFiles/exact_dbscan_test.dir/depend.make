# Empty dependencies file for exact_dbscan_test.
# This may be replaced when dependencies are built.
