file(REMOVE_RECURSE
  "CMakeFiles/exact_dbscan_test.dir/exact_dbscan_test.cc.o"
  "CMakeFiles/exact_dbscan_test.dir/exact_dbscan_test.cc.o.d"
  "exact_dbscan_test"
  "exact_dbscan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_dbscan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
