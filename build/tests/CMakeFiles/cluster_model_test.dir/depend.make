# Empty dependencies file for cluster_model_test.
# This may be replaced when dependencies are built.
