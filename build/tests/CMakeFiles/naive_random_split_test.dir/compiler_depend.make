# Empty compiler generated dependencies file for naive_random_split_test.
# This may be replaced when dependencies are built.
