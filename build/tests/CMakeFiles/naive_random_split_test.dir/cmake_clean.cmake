file(REMOVE_RECURSE
  "CMakeFiles/naive_random_split_test.dir/naive_random_split_test.cc.o"
  "CMakeFiles/naive_random_split_test.dir/naive_random_split_test.cc.o.d"
  "naive_random_split_test"
  "naive_random_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_random_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
