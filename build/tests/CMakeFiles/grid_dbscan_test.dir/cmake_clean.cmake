file(REMOVE_RECURSE
  "CMakeFiles/grid_dbscan_test.dir/grid_dbscan_test.cc.o"
  "CMakeFiles/grid_dbscan_test.dir/grid_dbscan_test.cc.o.d"
  "grid_dbscan_test"
  "grid_dbscan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_dbscan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
