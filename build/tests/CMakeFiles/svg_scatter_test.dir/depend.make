# Empty dependencies file for svg_scatter_test.
# This may be replaced when dependencies are built.
