file(REMOVE_RECURSE
  "CMakeFiles/svg_scatter_test.dir/svg_scatter_test.cc.o"
  "CMakeFiles/svg_scatter_test.dir/svg_scatter_test.cc.o.d"
  "svg_scatter_test"
  "svg_scatter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svg_scatter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
