file(REMOVE_RECURSE
  "CMakeFiles/accuracy_property_test.dir/accuracy_property_test.cc.o"
  "CMakeFiles/accuracy_property_test.dir/accuracy_property_test.cc.o.d"
  "accuracy_property_test"
  "accuracy_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
