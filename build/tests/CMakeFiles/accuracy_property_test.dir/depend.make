# Empty dependencies file for accuracy_property_test.
# This may be replaced when dependencies are built.
