# Empty compiler generated dependencies file for region_split_test.
# This may be replaced when dependencies are built.
