file(REMOVE_RECURSE
  "CMakeFiles/region_split_test.dir/region_split_test.cc.o"
  "CMakeFiles/region_split_test.dir/region_split_test.cc.o.d"
  "region_split_test"
  "region_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
