#include "io/mmap_dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "io/binary.h"
#include "io/point_source.h"
#include "synth/generators.h"

namespace rpdbscan {
namespace {

class MmapDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/mmap_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".rpds";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(MmapDatasetTest, MatchesReadBinary) {
  const Dataset ds = synth::Blobs(3210, 4, 1.0, 81, /*dim=*/3);
  ASSERT_TRUE(WriteBinary(path_, ds).ok());
  auto m = MmapDataset::Open(path_);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->dim(), ds.dim());
  EXPECT_EQ(m->size(), ds.size());
  EXPECT_EQ(m->PayloadBytes(), ds.size() * ds.dim() * sizeof(float));
  EXPECT_EQ(std::memcmp(m->PointData(0), ds.raw(), m->PayloadBytes()), 0);
  // Arbitrary interior offset.
  EXPECT_EQ(std::memcmp(m->PointData(1000), ds.raw() + 1000 * ds.dim(),
                        100 * ds.dim() * sizeof(float)),
            0);
}

TEST_F(MmapDatasetTest, BorrowedViewIsZeroCopy) {
  const Dataset ds = synth::Blobs(500, 2, 1.0, 82);
  ASSERT_TRUE(WriteBinary(path_, ds).ok());
  auto m = MmapDataset::Open(path_);
  ASSERT_TRUE(m.ok());
  const Dataset view = m->BorrowedView();
  EXPECT_TRUE(view.borrowed());
  EXPECT_EQ(view.raw(), m->PointData(0));  // same memory, not a copy
  EXPECT_EQ(view.size(), ds.size());
  EXPECT_EQ(view.dim(), ds.dim());
}

TEST_F(MmapDatasetTest, EmptyFileOpens) {
  ASSERT_TRUE(WriteBinary(path_, Dataset(5)).ok());
  auto m = MmapDataset::Open(path_);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->size(), 0u);
  EXPECT_EQ(m->dim(), 5u);
  EXPECT_EQ(m->BorrowedView().size(), 0u);
}

TEST_F(MmapDatasetTest, MissingFileIsIOError) {
  auto m = MmapDataset::Open("/nonexistent/file.rpds");
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kIOError);
}

TEST_F(MmapDatasetTest, TruncatedFileRejectedBeforeMapping) {
  const Dataset ds = synth::Blobs(200, 2, 1.0, 83);
  ASSERT_TRUE(WriteBinary(path_, ds).ok());
  std::ifstream in(path_, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() - 7));
  out.close();
  auto m = MmapDataset::Open(path_);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MmapDatasetTest, ReleaseAffectsResidencyNotAddressability) {
  const Dataset ds = synth::Blobs(10000, 3, 1.0, 84, /*dim=*/4);
  ASSERT_TRUE(WriteBinary(path_, ds).ok());
  auto m = MmapDataset::Open(path_);
  ASSERT_TRUE(m.ok());
  // Touch everything, drop everything, then read it all again: the pages
  // must re-fault with identical content (file-backed read-only mapping).
  EXPECT_EQ(std::memcmp(m->PointData(0), ds.raw(), m->PayloadBytes()), 0);
  m->DropResidency();
  EXPECT_EQ(std::memcmp(m->PointData(0), ds.raw(), m->PayloadBytes()), 0);
  // Partial ranges, including ones smaller than a page.
  m->Release(3, 1);
  m->Release(0, m->size());
  m->Release(m->size(), 0);
  EXPECT_EQ(std::memcmp(m->PointData(0), ds.raw(), m->PayloadBytes()), 0);
}

TEST_F(MmapDatasetTest, MoveTransfersMapping) {
  const Dataset ds = synth::Blobs(100, 2, 1.0, 85);
  ASSERT_TRUE(WriteBinary(path_, ds).ok());
  auto m = MmapDataset::Open(path_);
  ASSERT_TRUE(m.ok());
  MmapDataset moved = std::move(*m);
  EXPECT_EQ(moved.size(), ds.size());
  EXPECT_EQ(std::memcmp(moved.PointData(0), ds.raw(), moved.PayloadBytes()),
            0);
}

TEST_F(MmapDatasetTest, VerifyChecksumPassesAndCatchesFlip) {
  const Dataset ds = synth::Blobs(1000, 3, 1.0, 86);
  WriteBinaryOptions opts;
  opts.payload_checksum = true;
  ASSERT_TRUE(WriteBinary(path_, ds, opts).ok());
  {
    auto m = MmapDataset::Open(path_);
    ASSERT_TRUE(m.ok());
    EXPECT_TRUE(m->info().has_checksum);
    EXPECT_TRUE(m->VerifyChecksum().ok());
  }
  // Flip one payload bit on disk; Open still succeeds (framing is intact)
  // but the explicit verification must catch it.
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(24 + 512);
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x01);
  f.seekp(24 + 512);
  f.write(&b, 1);
  f.close();
  auto m = MmapDataset::Open(path_);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->VerifyChecksum().ok());
}

TEST_F(MmapDatasetTest, VerifyChecksumOkWithoutTrailer) {
  const Dataset ds = synth::Blobs(100, 2, 1.0, 87);
  ASSERT_TRUE(WriteBinary(path_, ds).ok());
  auto m = MmapDataset::Open(path_);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->info().has_checksum);
  EXPECT_TRUE(m->VerifyChecksum().ok());
}

TEST(ChunkIteratorTest, CoversSourceInOrder) {
  const Dataset ds = synth::Blobs(1003, 2, 1.0, 88, /*dim=*/3);
  const DatasetSource source(ds);
  // Budget of 100 points' worth of floats.
  ChunkIterator it(source, 100 * 3 * sizeof(float));
  EXPECT_EQ(it.points_per_chunk(), 100u);
  EXPECT_EQ(it.num_chunks(), 11u);  // 10 full + 1 partial (3 points)
  PointChunk c;
  size_t next = 0;
  size_t chunks = 0;
  while (it.Next(&c)) {
    EXPECT_EQ(c.first, next);
    EXPECT_EQ(c.data, ds.raw() + c.first * ds.dim());
    next += c.count;
    ++chunks;
  }
  EXPECT_EQ(next, ds.size());
  EXPECT_EQ(chunks, it.num_chunks());
  EXPECT_FALSE(it.Next(&c));  // stays exhausted
}

TEST(ChunkIteratorTest, TinyBudgetStillMakesProgress) {
  const Dataset ds = synth::Blobs(17, 2, 1.0, 89);
  const DatasetSource source(ds);
  ChunkIterator it(source, 1);  // below one point's bytes
  EXPECT_EQ(it.points_per_chunk(), 1u);
  EXPECT_EQ(it.num_chunks(), 17u);
  PointChunk c;
  size_t total = 0;
  while (it.Next(&c)) total += c.count;
  EXPECT_EQ(total, ds.size());
}

TEST(ChunkIteratorTest, EmptySource) {
  const Dataset ds(3);
  const DatasetSource source(ds);
  ChunkIterator it(source, 1 << 20);
  PointChunk c;
  EXPECT_FALSE(it.Next(&c));
  EXPECT_EQ(it.num_chunks(), 0u);
}

}  // namespace
}  // namespace rpdbscan
