// Hot-swap contract of the EpochRegistry (run under TSan by
// tools/run_checks.sh): reader threads hammer LabelServer queries while a
// writer publishes new epochs into the registry's hot-swap slot. Every
// reply must be consistent with exactly ONE published epoch — the one the
// reader pinned — which we check against per-epoch expected answers
// precomputed from deterministically reconstructed snapshots. Readers
// must also observe epoch sequences monotonically (the slot is a single
// release/acquire atomic).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/rp_dbscan.h"
#include "io/dataset.h"
#include "serve/label_server.h"
#include "serve/snapshot.h"
#include "stream/epoch_registry.h"
#include "stream/incremental.h"
#include "synth/generators.h"
#include "util/random.h"
#include "test_seed.h"

namespace rpdbscan {
namespace {

bool SameResult(const ServeResult& a, const ServeResult& b) {
  return a.cluster == b.cluster && a.kind == b.kind &&
         a.certainty == b.certainty && a.density == b.density;
}

Dataset Slice(const Dataset& all, size_t begin, size_t count) {
  Dataset out(all.dim());
  out.Reserve(count);
  for (size_t i = 0; i < count; ++i) out.Append(all.point(begin + i));
  return out;
}

RpDbscanOptions SwapOptions(uint64_t seed) {
  RpDbscanOptions o;
  o.eps = 2.0;
  o.min_pts = 10;
  o.num_threads = 2;
  o.num_partitions = 8;
  o.seed = seed;
  return o;
}

/// Streams `all` (seed prefix + equal batches) and returns the serialized
/// bytes of every epoch snapshot. Serialization decouples the epochs from
/// the stream so the test can reconstruct identical snapshots twice: once
/// to precompute expected answers, once to feed the registry under load.
std::vector<std::vector<uint8_t>> StreamEpochBytes(const Dataset& all,
                                                   const RpDbscanOptions& o,
                                                   size_t num_epochs) {
  std::vector<std::vector<uint8_t>> bytes;
  const size_t seed_points = all.size() * 3 / 5;
  const size_t batch =
      (all.size() - seed_points + num_epochs - 2) / (num_epochs - 1);
  auto clusterer_or = StreamClusterer::Create(Slice(all, 0, seed_points), o);
  EXPECT_TRUE(clusterer_or.ok()) << clusterer_or.status();
  if (!clusterer_or.ok()) return bytes;
  StreamClusterer clusterer = std::move(*clusterer_or);
  size_t pos = seed_points;
  for (size_t e = 0; e < num_epochs; ++e) {
    if (e > 0) {
      const size_t take = std::min(batch, all.size() - pos);
      EXPECT_TRUE(clusterer.Ingest(Slice(all, pos, take)).ok());
      pos += take;
    }
    auto epoch_or = clusterer.PublishEpoch();
    EXPECT_TRUE(epoch_or.ok()) << epoch_or.status();
    if (!epoch_or.ok()) return bytes;
    bytes.push_back(epoch_or->snapshot.Serialize());
  }
  return bytes;
}

TEST(EpochSwapTest, ConcurrentReadersSeeExactlyOneEpochPerReply) {
  const uint64_t seed = TestSeed(7701);
  SCOPED_TRACE(SeedNote(seed));
  const size_t kEpochs = 5;
  const size_t kReaders = 4;
  const Dataset all = synth::Blobs(2000, 5, 1.2, seed);
  const RpDbscanOptions options = SwapOptions(seed);
  const std::vector<std::vector<uint8_t>> epoch_bytes =
      StreamEpochBytes(all, options, kEpochs);
  ASSERT_EQ(epoch_bytes.size(), kEpochs);

  // Query set: in-sample points plus uniform strays around the data.
  Dataset queries(all.dim());
  Rng qrng(seed ^ 0xfeedULL);
  for (size_t i = 0; i < 32; ++i) {
    queries.Append(all.point(qrng.Uniform(all.size())));
  }
  for (size_t i = 0; i < 16; ++i) {
    std::vector<float> p(all.dim());
    for (auto& v : p) v = static_cast<float>(qrng.UniformDouble(-5.0, 45.0));
    queries.Append(p.data());
  }

  // Expected answer table: epoch -> query -> result, from snapshots
  // reconstructed out of the same bytes the registry will publish.
  const LabelServerOptions server_opts;
  std::vector<std::vector<ServeResult>> expected(kEpochs);
  for (size_t e = 0; e < kEpochs; ++e) {
    auto snap_or = ClusterModelSnapshot::Deserialize(epoch_bytes[e]);
    ASSERT_TRUE(snap_or.ok()) << snap_or.status();
    ASSERT_TRUE(snap_or->has_epoch());
    ASSERT_EQ(snap_or->epoch().sequence, e);
    const LabelServer server(
        std::make_shared<const ClusterModelSnapshot>(std::move(*snap_or)),
        server_opts);
    for (size_t q = 0; q < queries.size(); ++q) {
      expected[e].push_back(server.Classify(queries.point(q)));
    }
  }

  EpochRegistry registry(server_opts);
  ASSERT_EQ(registry.CurrentSequence(), -1);
  {
    auto snap_or = ClusterModelSnapshot::Deserialize(epoch_bytes[0]);
    ASSERT_TRUE(snap_or.ok()) << snap_or.status();
    ASSERT_TRUE(registry.Publish(std::move(*snap_or)).ok());
  }

  struct ReaderLog {
    size_t checks = 0;
    size_t mismatches = 0;
    std::string first_mismatch;
    uint64_t max_seq = 0;
    bool monotonic = true;
  };
  std::atomic<bool> stop{false};
  std::vector<ReaderLog> logs(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      ReaderLog& log = logs[r];
      uint64_t last_seq = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // Pin ONE epoch, answer against it, compare against that epoch's
        // table — never a mix, no matter when the writer swaps.
        const std::shared_ptr<const PublishedEpoch> pin = registry.Current();
        if (pin == nullptr) continue;
        const uint64_t seq = pin->info.sequence;
        if (seq < last_seq) log.monotonic = false;
        last_seq = seq;
        if (seq > log.max_seq) log.max_seq = seq;
        const size_t q = log.checks % 48;
        const ServeResult got = pin->server->Classify(queries.point(q));
        if (!SameResult(got, expected[seq][q])) {
          ++log.mismatches;
          if (log.first_mismatch.empty()) {
            log.first_mismatch = "epoch " + std::to_string(seq) +
                                 " query " + std::to_string(q);
          }
        }
        ++log.checks;
      }
    });
  }

  // Writer: swap in epochs 1..N-1 while the readers hammer away.
  for (size_t e = 1; e < kEpochs; ++e) {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    auto snap_or = ClusterModelSnapshot::Deserialize(epoch_bytes[e]);
    ASSERT_TRUE(snap_or.ok()) << snap_or.status();
    auto published_or = registry.Publish(std::move(*snap_or));
    ASSERT_TRUE(published_or.ok()) << published_or.status();
    ASSERT_EQ((*published_or)->info.sequence, e);
  }
  ASSERT_EQ(registry.CurrentSequence(),
            static_cast<int64_t>(kEpochs - 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  size_t total_checks = 0;
  uint64_t max_seq_seen = 0;
  for (size_t r = 0; r < kReaders; ++r) {
    SCOPED_TRACE("reader " + std::to_string(r));
    EXPECT_EQ(logs[r].mismatches, 0u) << logs[r].first_mismatch;
    EXPECT_TRUE(logs[r].monotonic);
    EXPECT_GT(logs[r].checks, 0u);
    total_checks += logs[r].checks;
    if (logs[r].max_seq > max_seq_seen) max_seq_seen = logs[r].max_seq;
  }
  EXPECT_GT(total_checks, kEpochs * kReaders);
  // At least one reader ran past the final swap (we slept after it).
  EXPECT_EQ(max_seq_seen, kEpochs - 1);
}

/// Epoch lineage survives the registry's on-disk persistence: the
/// .rpsnap written by Publish round-trips the epoch section (flag bit,
/// sequence, parent, point/batch counts) through ReadFile.
TEST(EpochSwapTest, PersistedEpochSnapshotRoundTripsLineage) {
  const uint64_t seed = TestSeed(7702);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset all = synth::Blobs(800, 4, 1.0, seed);
  const std::vector<std::vector<uint8_t>> epoch_bytes =
      StreamEpochBytes(all, SwapOptions(seed), 3);
  ASSERT_EQ(epoch_bytes.size(), 3u);

  const std::string dir = ::testing::TempDir();
  EpochRegistry registry(LabelServerOptions(), dir);
  for (size_t e = 0; e < 3; ++e) {
    auto snap_or = ClusterModelSnapshot::Deserialize(epoch_bytes[e]);
    ASSERT_TRUE(snap_or.ok()) << snap_or.status();
    auto published_or = registry.Publish(std::move(*snap_or));
    ASSERT_TRUE(published_or.ok()) << published_or.status();
    const PublishedEpoch& published = **published_or;
    ASSERT_FALSE(published.path.empty());

    auto read_or = ClusterModelSnapshot::ReadFile(published.path);
    ASSERT_TRUE(read_or.ok()) << read_or.status();
    ASSERT_TRUE(read_or->has_epoch());
    EXPECT_EQ(read_or->epoch().sequence, e);
    EXPECT_EQ(read_or->epoch().parent_sequence, e == 0 ? 0 : e - 1);
    EXPECT_EQ(read_or->epoch().points_ingested,
              published.info.points_ingested);
    EXPECT_EQ(read_or->epoch().batches_ingested, e + 1);
    EXPECT_EQ(read_or->meta().num_points, published.info.points_ingested);
  }
}

}  // namespace
}  // namespace rpdbscan
