// Multi-model serving: the ModelRegistry, routed (v2) frames, and the
// registry request loop. Answers routed by model id must be bit-identical
// to single-model serving against the same snapshot, unrouted frames must
// hit the default model, and unknown ids must earn an error frame without
// poisoning the stream. Runs in the TSan leg of tools/run_checks.sh
// (label sanitizer-safe): several serving loops share one registry from
// concurrent threads here.

#include "serve/model_registry.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/rp_dbscan.h"
#include "io/framing.h"
#include "parallel/thread_pool.h"
#include "serve/request_loop.h"
#include "serve/snapshot.h"
#include "synth/generators.h"
#include "test_seed.h"

namespace rpdbscan {
namespace {

std::shared_ptr<const ClusterModelSnapshot> Freeze(const Dataset& data,
                                                   double eps,
                                                   size_t min_pts) {
  RpDbscanOptions o;
  o.eps = eps;
  o.min_pts = min_pts;
  o.num_threads = 2;
  o.num_partitions = 4;
  o.capture_model = true;
  auto run = RunRpDbscan(data, o);
  EXPECT_TRUE(run.ok()) << run.status();
  auto snap = ClusterModelSnapshot::FromModel(std::move(*run->model));
  EXPECT_TRUE(snap.ok()) << snap.status();
  return std::make_shared<const ClusterModelSnapshot>(std::move(*snap));
}

void ExpectSameResults(const std::vector<ServeResult>& got,
                       const std::vector<ServeResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].cluster, want[i].cluster) << i;
    ASSERT_EQ(got[i].kind, want[i].kind) << i;
    ASSERT_EQ(got[i].certainty, want[i].certainty) << i;
    ASSERT_EQ(got[i].density, want[i].density) << i;
  }
}

TEST(ModelRegistryTest, AddFindDefaultAndDuplicates) {
  const uint64_t seed = TestSeed(10100);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(600, 3, 1.2, seed, 2);
  ModelRegistry registry;
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.Default(), nullptr);

  ASSERT_TRUE(registry.Add(7, Freeze(ds, 1.5, 10)).ok());
  ASSERT_TRUE(registry.Add(2, Freeze(ds, 2.0, 12)).ok());
  EXPECT_FALSE(registry.Add(7, Freeze(ds, 2.5, 15)).ok());  // duplicate
  EXPECT_FALSE(registry.Add(9, nullptr).ok());

  EXPECT_EQ(registry.size(), 2u);
  EXPECT_NE(registry.Find(7), nullptr);
  EXPECT_NE(registry.Find(2), nullptr);
  EXPECT_EQ(registry.Find(3), nullptr);
  EXPECT_EQ(registry.default_id(), 7u);  // first added wins
  EXPECT_EQ(registry.Default(), registry.Find(7));
  ASSERT_TRUE(registry.SetDefault(2).ok());
  EXPECT_EQ(registry.Default(), registry.Find(2));
  EXPECT_FALSE(registry.SetDefault(99).ok());
  EXPECT_EQ(registry.ids(), (std::vector<uint32_t>{2, 7}));
}

TEST(ModelRegistryTest, EmptyRegistryRefusesToServe) {
  ModelRegistry registry;
  ThreadPool pool(2);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const Status s = ServeRequestLoop(fds[0], fds[0], registry, pool);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s;
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ModelRegistryTest, RoutesThreeResidentModelsBitIdentically) {
  const uint64_t seed = TestSeed(10200);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(800, 4, 1.5, seed, 3);

  // Three models over the same data at different (eps, min_pts): the
  // routing decides which clustering answers, so the answers differ
  // between models but must match each model's own LabelServer exactly.
  const std::vector<std::pair<uint32_t, std::pair<double, size_t>>> specs = {
      {10, {2.0, 15}}, {20, {2.6, 10}}, {30, {3.4, 8}}};
  ModelRegistry registry;
  for (const auto& [id, params] : specs) {
    ASSERT_TRUE(
        registry.Add(id, Freeze(ds, params.first, params.second)).ok());
  }
  ASSERT_EQ(registry.size(), 3u);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int server_fd = fds[0];
  const int client_fd = fds[1];
  RequestLoopStats stats;
  std::thread serving([&] {
    ThreadPool pool(2);
    const Status s = ServeRequestLoop(server_fd, server_fd, registry, pool,
                                      RequestLoopOptions(), &stats);
    EXPECT_TRUE(s.ok()) << s;
  });

  // Per-model local baselines.
  std::vector<std::vector<ServeResult>> local(specs.size());
  {
    ThreadPool pool(2);
    for (size_t m = 0; m < specs.size(); ++m) {
      ASSERT_TRUE(registry.Find(specs[m].first)
                      ->ClassifyBatch(ds, pool, &local[m])
                      .ok());
    }
  }

  // Routed requests interleaved across the three models.
  for (int round = 0; round < 2; ++round) {
    for (size_t m = 0; m < specs.size(); ++m) {
      ASSERT_TRUE(
          SendRoutedClassifyRequest(client_fd, specs[m].first, ds).ok());
      auto results = ReadClassifyResponse(client_fd);
      ASSERT_TRUE(results.ok()) << results.status();
      ExpectSameResults(*results, local[m]);
    }
  }
  // An unrouted (v1) request resolves to the default model — the first
  // one added — keeping old clients wire-compatible.
  ASSERT_TRUE(SendClassifyRequest(client_fd, ds).ok());
  auto unrouted = ReadClassifyResponse(client_fd);
  ASSERT_TRUE(unrouted.ok()) << unrouted.status();
  ExpectSameResults(*unrouted, local[0]);

  // An unknown id earns an error frame and the loop keeps serving.
  ASSERT_TRUE(SendRoutedClassifyRequest(client_fd, 999, ds).ok());
  auto err = ReadClassifyResponse(client_fd);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal) << err.status();
  ASSERT_TRUE(SendRoutedClassifyRequest(client_fd, 30, ds).ok());
  auto after = ReadClassifyResponse(client_fd);
  ASSERT_TRUE(after.ok()) << after.status();
  ExpectSameResults(*after, local[2]);

  ASSERT_TRUE(SendShutdown(client_fd).ok());
  serving.join();
  ::close(client_fd);
  ::close(server_fd);

  // Stream-wide counters: 6 routed + 1 unrouted + 1 unknown + 1 retry.
  EXPECT_EQ(stats.requests, 9u);
  EXPECT_EQ(stats.responses, 8u);
  EXPECT_EQ(stats.errors, 1u);
  // Per-model split: the unknown id lands on no model.
  ASSERT_EQ(stats.per_model.size(), 3u);
  EXPECT_EQ(stats.per_model.at(10).requests, 3u);  // 2 routed + default
  EXPECT_EQ(stats.per_model.at(10).responses, 3u);
  EXPECT_EQ(stats.per_model.at(20).requests, 2u);
  EXPECT_EQ(stats.per_model.at(30).requests, 3u);  // 2 routed + retry
  EXPECT_EQ(stats.per_model.at(30).responses, 3u);
  uint64_t split_queries = 0;
  for (const auto& [id, ms] : stats.per_model) {
    EXPECT_EQ(ms.errors, 0u) << "model " << id;
    EXPECT_EQ(ms.serve.queries, ms.requests * ds.size()) << "model " << id;
    EXPECT_EQ(ms.latency.seen(), ms.responses * ds.size()) << "model " << id;
    split_queries += ms.serve.queries;
  }
  EXPECT_EQ(split_queries, stats.serve.queries);
}

TEST(ModelRegistryTest, ConcurrentLoopsShareOneRegistry) {
  const uint64_t seed = TestSeed(10300);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(500, 3, 1.5, seed, 2);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add(1, Freeze(ds, 2.0, 12)).ok());
  ASSERT_TRUE(registry.Add(2, Freeze(ds, 2.8, 9)).ok());
  ASSERT_TRUE(registry.Add(3, Freeze(ds, 3.6, 7)).ok());

  std::vector<std::vector<ServeResult>> local(3);
  {
    ThreadPool pool(2);
    for (uint32_t id = 1; id <= 3; ++id) {
      ASSERT_TRUE(registry.Find(id)
                      ->ClassifyBatch(ds, pool, &local[id - 1])
                      .ok());
    }
  }

  // Three independent serving streams over the one immutable registry,
  // each with its own client hammering a different model mix.
  constexpr int kStreams = 3;
  std::vector<std::thread> servers;
  std::vector<std::thread> clients;
  for (int s = 0; s < kStreams; ++s) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const int server_fd = fds[0];
    const int client_fd = fds[1];
    servers.emplace_back([&registry, server_fd] {
      ThreadPool pool(2);
      const Status st =
          ServeRequestLoop(server_fd, server_fd, registry, pool);
      EXPECT_TRUE(st.ok()) << st;
      ::close(server_fd);
    });
    clients.emplace_back([&, client_fd, s] {
      for (int round = 0; round < 4; ++round) {
        const uint32_t id = 1 + static_cast<uint32_t>((s + round) % 3);
        ASSERT_TRUE(SendRoutedClassifyRequest(client_fd, id, ds).ok());
        auto results = ReadClassifyResponse(client_fd);
        ASSERT_TRUE(results.ok()) << results.status();
        ExpectSameResults(*results, local[id - 1]);
      }
      ASSERT_TRUE(SendShutdown(client_fd).ok());
      ::close(client_fd);
    });
  }
  for (auto& t : clients) t.join();
  for (auto& t : servers) t.join();
}

}  // namespace
}  // namespace rpdbscan
