// Scalar-vs-SIMD equivalence of the sub-cell classification kernels: on
// any lane block the detected vector kernel must return the exact same
// density as the header-inline scalar reference — the property that makes
// SIMD dispatch invisible to clustering results. Also covers the
// RPDBSCAN_FORCE_SCALAR escape hatch and the end-to-end pipeline
// guarantee (labels bit-identical with kernels forced scalar).
#include "core/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "core/rp_dbscan.h"
#include "synth/generators.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

// One cell's SoA block: `n` real sub-cells padded to the lane width,
// coordinate d's lane at lanes[d * padded + s]. Padding carries +inf
// centers / zero counts / all-ones quantized slots, exactly as
// CellDictionary::Assemble emits them.
struct LaneBlock {
  uint32_t n = 0;
  uint32_t padded = 0;
  std::vector<float> lanes;
  std::vector<uint32_t> counts;
  std::vector<uint32_t> qlanes;
};

LaneBlock RandomBlock(Rng& rng, size_t dim, uint32_t n, double span,
                      const QuantizedSpec& spec) {
  LaneBlock b;
  b.n = n;
  b.padded = (n + kSimdLaneWidth - 1) / kSimdLaneWidth * kSimdLaneWidth;
  if (b.padded == 0) b.padded = kSimdLaneWidth;
  b.lanes.assign(static_cast<size_t>(b.padded) * dim, kLanePadCenter);
  b.counts.assign(b.padded, 0);
  b.qlanes.assign(static_cast<size_t>(b.padded) * dim, kLanePadQuant);
  for (uint32_t s = 0; s < n; ++s) {
    b.counts[s] = 1 + static_cast<uint32_t>(rng.Uniform(50));
    for (size_t d = 0; d < dim; ++d) {
      const float c = static_cast<float>(rng.UniformDouble(0.0, span));
      b.lanes[d * b.padded + s] = c;
      b.qlanes[d * b.padded + s] = static_cast<uint32_t>(std::llround(
          (static_cast<double>(c) - spec.base[d]) * spec.inv_quantum));
    }
  }
  return b;
}

QuantizedSpec MakeSpec(double eps, size_t dim) {
  QuantizedSpec spec;
  spec.enabled = true;
  spec.inv_quantum =
      static_cast<double>(int64_t{1} << kQuantBitsPerEps) / eps;
  for (size_t d = 0; d < dim; ++d) spec.base[d] = 0.0;
  return spec;
}

TEST(SimdKernelTest, DetectedLevelMatchesScalarExactly) {
  Rng rng(101);
  for (const size_t dim : {2u, 3u, 4u, 5u, 7u}) {
    const double eps = 0.9;
    const double eps2 = eps * eps;
    const QuantizedSpec spec = MakeSpec(eps, dim);
    SubcellCountFn scalar = GetSubcellCountFn(SimdLevel::kScalar, dim);
    SubcellCountFn vec = GetSubcellCountFn(DetectSimdLevel(), dim);
    for (int trial = 0; trial < 40; ++trial) {
      const uint32_t n = static_cast<uint32_t>(rng.Uniform(23));
      const LaneBlock b = RandomBlock(rng, dim, n, 3.0, spec);
      float q[CellCoord::kMaxDim];
      for (size_t d = 0; d < dim; ++d) {
        q[d] = static_cast<float>(rng.UniformDouble(-0.5, 3.5));
      }
      EXPECT_EQ(scalar(q, b.lanes.data(), b.counts.data(), b.padded, dim,
                       eps2),
                vec(q, b.lanes.data(), b.counts.data(), b.padded, dim,
                    eps2))
          << "dim=" << dim << " trial=" << trial;
    }
  }
}

TEST(SimdKernelTest, BoundaryDistancesStayBitIdentical) {
  // Centers planted exactly on / just off the eps sphere: the acute case
  // for any arithmetic re-association. The vector kernel must agree on
  // every <= verdict.
  for (const size_t dim : {2u, 3u, 5u}) {
    const double eps = 1.0;
    const QuantizedSpec spec = MakeSpec(eps, dim);
    SubcellCountFn scalar = GetSubcellCountFn(SimdLevel::kScalar, dim);
    SubcellCountFn vec = GetSubcellCountFn(DetectSimdLevel(), dim);
    Rng rng(202);
    for (int trial = 0; trial < 60; ++trial) {
      LaneBlock b = RandomBlock(rng, dim, 8, 2.0, spec);
      float q[CellCoord::kMaxDim] = {};
      for (size_t d = 0; d < dim; ++d) q[d] = 1.0f;
      // Overwrite sub-cell 0 with a point at distance ~eps from q along
      // a random axis, nudged by a few ulps either way.
      const size_t axis = rng.Uniform(dim);
      float on = q[axis] + static_cast<float>(eps);
      for (int nudge = 0; nudge < static_cast<int>(rng.Uniform(4));
           ++nudge) {
        on = std::nextafter(on, trial % 2 == 0 ? 10.0f : -10.0f);
      }
      for (size_t d = 0; d < dim; ++d) {
        b.lanes[d * b.padded] = d == axis ? on : q[d];
      }
      EXPECT_EQ(scalar(q, b.lanes.data(), b.counts.data(), b.padded, dim,
                       eps * eps),
                vec(q, b.lanes.data(), b.counts.data(), b.padded, dim,
                    eps * eps));
    }
  }
}

TEST(SimdKernelTest, QuantKernelsMatchExactAndEachOther) {
  Rng rng(303);
  for (const size_t dim : {2u, 3u, 4u, 5u, 6u}) {
    const double eps = 0.75;
    const double eps2 = eps * eps;
    const QuantizedSpec spec = MakeSpec(eps, dim);
    SubcellCountFn exact = GetSubcellCountFn(SimdLevel::kScalar, dim);
    SubcellCountQuantFn qscalar =
        GetSubcellCountQuantFn(SimdLevel::kScalar, dim);
    SubcellCountQuantFn qvec =
        GetSubcellCountQuantFn(DetectSimdLevel(), dim);
    for (int trial = 0; trial < 40; ++trial) {
      const uint32_t n = static_cast<uint32_t>(rng.Uniform(19));
      const LaneBlock b = RandomBlock(rng, dim, n, 2.5, spec);
      float q[CellCoord::kMaxDim];
      int64_t qq[CellCoord::kMaxDim];
      for (size_t d = 0; d < dim; ++d) {
        q[d] = static_cast<float>(rng.UniformDouble(-0.5, 3.0));
      }
      ASSERT_TRUE(QuantizeQuery(spec, q, dim, qq));
      const uint32_t want =
          exact(q, b.lanes.data(), b.counts.data(), b.padded, dim, eps2);
      uint64_t fb_scalar = 0;
      uint64_t fb_vec = 0;
      EXPECT_EQ(qscalar(q, qq, b.lanes.data(), b.qlanes.data(),
                        b.counts.data(), b.padded, dim, eps2, &fb_scalar),
                want)
          << "dim=" << dim;
      EXPECT_EQ(qvec(q, qq, b.lanes.data(), b.qlanes.data(),
                     b.counts.data(), b.padded, dim, eps2, &fb_vec),
                want);
      EXPECT_EQ(fb_scalar, fb_vec);
    }
  }
}

TEST(SimdKernelTest, PointBoundsMatchesScalarBitExactly) {
  // The per-point candidate-bounds kernel: transposed MBR arrays padded
  // to the lane stride, query bounds from the detected tier must be
  // bit-identical doubles to the scalar reference — including candidates
  // sitting exactly on an MBR face (gap exactly zero) and queries inside
  // the box.
  Rng rng(404);
  for (const size_t dim : {2u, 3u, 4u, 5u, 7u}) {
    PointBoundsFn vec = GetPointBoundsFn(DetectSimdLevel());
    for (int trial = 0; trial < 40; ++trial) {
      const size_t num = rng.Uniform(27);
      const size_t stride =
          (num + kSimdLaneWidth - 1) / kSimdLaneWidth * kSimdLaneWidth;
      std::vector<float> lo_t(stride * dim, 0.0f);
      std::vector<float> hi_t(stride * dim, 0.0f);
      float q[CellCoord::kMaxDim];
      for (size_t d = 0; d < dim; ++d) {
        q[d] = static_cast<float>(rng.UniformDouble(-1.0, 4.0));
      }
      for (size_t i = 0; i < stride; ++i) {
        for (size_t d = 0; d < dim; ++d) {
          float a = static_cast<float>(rng.UniformDouble(-1.0, 4.0));
          float b = static_cast<float>(rng.UniformDouble(-1.0, 4.0));
          if (a > b) std::swap(a, b);
          // A third of the faces land exactly on the query coordinate:
          // the boundary case where the < / > selects must agree.
          if (rng.Uniform(3) == 0) a = q[d];
          if (rng.Uniform(3) == 0) b = q[d];
          if (a > b) std::swap(a, b);
          lo_t[d * stride + i] = a;
          hi_t[d * stride + i] = b;
        }
      }
      std::vector<double> want(stride, -1.0);
      std::vector<double> got(stride, -1.0);
      PointBoundsScalar(q, lo_t.data(), hi_t.data(), stride, dim, num,
                        want.data());
      vec(q, lo_t.data(), hi_t.data(), stride, dim, num, got.data());
      for (size_t i = 0; i < num; ++i) {
        EXPECT_EQ(want[i], got[i])
            << "dim=" << dim << " trial=" << trial << " i=" << i;
      }
    }
  }
}

TEST(SimdKernelTest, GroupBoundsMatchesScalarBitExactly) {
  // The grouped box-bounds kernel: transposed member coordinates against
  // one box, min2 AND max2 from the detected tier must be bit-identical
  // doubles to the scalar reference — including members exactly on a box
  // face (one gap exactly zero) and members inside the box (min2 exactly
  // zero, max2 positive).
  Rng rng(505);
  for (const size_t dim : {2u, 3u, 4u, 5u, 7u}) {
    GroupBoundsFn vec = GetGroupBoundsFn(DetectSimdLevel());
    for (int trial = 0; trial < 40; ++trial) {
      const size_t num = rng.Uniform(27);
      const size_t stride =
          (num + kSimdLaneWidth - 1) / kSimdLaneWidth * kSimdLaneWidth;
      double lo[CellCoord::kMaxDim];
      double hi[CellCoord::kMaxDim];
      for (size_t d = 0; d < dim; ++d) {
        double a = rng.UniformDouble(-1.0, 4.0);
        double b = rng.UniformDouble(-1.0, 4.0);
        if (a > b) std::swap(a, b);
        lo[d] = a;
        hi[d] = b;
      }
      std::vector<float> qt(stride * dim, 0.0f);
      for (size_t k = 0; k < stride; ++k) {
        for (size_t d = 0; d < dim; ++d) {
          float v = static_cast<float>(rng.UniformDouble(-1.0, 4.0));
          // A third of the coordinates land exactly on a box face, and
          // a third strictly inside the interval — the equality and
          // in-box cases where the max selects must agree.
          const uint32_t pick = rng.Uniform(6);
          if (pick == 0) v = static_cast<float>(lo[d]);
          if (pick == 1) v = static_cast<float>(hi[d]);
          if (pick == 2 || pick == 3) {
            v = static_cast<float>(
                rng.UniformDouble(lo[d], std::max(lo[d], hi[d])));
          }
          qt[d * stride + k] = v;
        }
      }
      std::vector<double> want_min(stride, -1.0), want_max(stride, -1.0);
      std::vector<double> got_min(stride, -1.0), got_max(stride, -1.0);
      GroupBoundsScalar(qt.data(), stride, num, lo, hi, dim,
                        want_min.data(), want_max.data());
      vec(qt.data(), stride, num, lo, hi, dim, got_min.data(),
          got_max.data());
      for (size_t k = 0; k < num; ++k) {
        EXPECT_EQ(want_min[k], got_min[k])
            << "dim=" << dim << " trial=" << trial << " k=" << k;
        EXPECT_EQ(want_max[k], got_max[k])
            << "dim=" << dim << " trial=" << trial << " k=" << k;
      }
    }
  }
}

TEST(SimdKernelTest, QuantizeQueryRejectsUnsafeInputs) {
  const QuantizedSpec spec = MakeSpec(1.0, 2);
  int64_t qq[CellCoord::kMaxDim];
  float bad_nan[2] = {std::nanf(""), 0.0f};
  EXPECT_FALSE(QuantizeQuery(spec, bad_nan, 2, qq));
  float bad_inf[2] = {std::numeric_limits<float>::infinity(), 0.0f};
  EXPECT_FALSE(QuantizeQuery(spec, bad_inf, 2, qq));
  float bad_huge[2] = {3.0e38f, 0.0f};
  EXPECT_FALSE(QuantizeQuery(spec, bad_huge, 2, qq));
  float fine[2] = {123.0f, -7.5f};
  EXPECT_TRUE(QuantizeQuery(spec, fine, 2, qq));
}

TEST(SimdKernelTest, ForceScalarEnvironmentOverride) {
  const SimdLevel unforced = DetectSimdLevel();
  ASSERT_EQ(setenv("RPDBSCAN_FORCE_SCALAR", "1", 1), 0);
  EXPECT_EQ(DetectSimdLevel(), SimdLevel::kScalar);
  ASSERT_EQ(setenv("RPDBSCAN_FORCE_SCALAR", "0", 1), 0);
  EXPECT_EQ(DetectSimdLevel(), unforced);
  ASSERT_EQ(unsetenv("RPDBSCAN_FORCE_SCALAR"), 0);
  EXPECT_EQ(DetectSimdLevel(), unforced);
}

TEST(SimdKernelTest, PipelineLabelsIdenticalScalarVsDispatch) {
  // The whole point: flipping kernels cannot move a single label.
  for (const size_t dim : {2u, 3u, 5u}) {
    const Dataset ds = synth::Blobs(3000, 4, 1.0, 110 + dim, dim);
    RpDbscanOptions scalar;
    scalar.eps = 1.5;
    scalar.min_pts = 15;
    scalar.num_threads = 2;
    scalar.num_partitions = 8;
    scalar.scalar_kernels = true;
    RpDbscanOptions simd = scalar;
    simd.scalar_kernels = false;
    auto a = RunRpDbscan(ds, scalar);
    auto b = RunRpDbscan(ds, simd);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->stats.simd_kernel, "scalar");
    EXPECT_EQ(b->stats.simd_kernel, SimdLevelName(DetectSimdLevel()));
    EXPECT_EQ(a->labels, b->labels) << "dim=" << dim;
    EXPECT_EQ(a->stats.num_clusters, b->stats.num_clusters);
  }
}

}  // namespace
}  // namespace rpdbscan
