#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace rpdbscan {
namespace {

TEST(Mix64Test, IsDeterministic) {
  EXPECT_EQ(Mix64(0), Mix64(0));
  EXPECT_EQ(Mix64(12345), Mix64(12345));
}

TEST(Mix64Test, DistinctInputsScatter) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.Uniform(10)];
  for (const int c : seen) EXPECT_GT(c, 800);  // ~1000 expected each
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(-5.0, 5.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, NormalHasApproxUnitMoments) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0;
  double sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalScalesMeanAndStddev) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

}  // namespace
}  // namespace rpdbscan
