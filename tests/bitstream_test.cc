#include "util/bitstream.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace rpdbscan {
namespace {

TEST(BitstreamTest, EmptyWriter) {
  BitWriter w;
  EXPECT_EQ(w.BitCount(), 0u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(BitstreamTest, SingleBitRoundTrip) {
  BitWriter w;
  w.Write(1, 1);
  EXPECT_EQ(w.BitCount(), 1u);
  BitReader r(w.bytes().data(), w.bytes().size());
  EXPECT_EQ(r.Read(1), 1u);
}

TEST(BitstreamTest, ByteAlignedValues) {
  BitWriter w;
  w.Write(0xAB, 8);
  w.Write(0xCD, 8);
  ASSERT_EQ(w.bytes().size(), 2u);
  EXPECT_EQ(w.bytes()[0], 0xAB);
  EXPECT_EQ(w.bytes()[1], 0xCD);
}

TEST(BitstreamTest, UnalignedFieldsRoundTrip) {
  BitWriter w;
  w.Write(5, 3);    // 101
  w.Write(0, 2);    // 00
  w.Write(127, 7);  // 1111111
  w.Write(1, 1);
  BitReader r(w.bytes().data(), w.bytes().size());
  EXPECT_EQ(r.Read(3), 5u);
  EXPECT_EQ(r.Read(2), 0u);
  EXPECT_EQ(r.Read(7), 127u);
  EXPECT_EQ(r.Read(1), 1u);
}

TEST(BitstreamTest, SixtyFourBitField) {
  BitWriter w;
  const uint64_t v = 0xDEADBEEFCAFEBABEULL;
  w.Write(v, 64);
  BitReader r(w.bytes().data(), w.bytes().size());
  EXPECT_EQ(r.Read(64), v);
}

TEST(BitstreamTest, OnlyLowBitsAreWritten) {
  BitWriter w;
  w.Write(0xFF, 4);  // only low 4 bits
  w.Write(0, 4);
  BitReader r(w.bytes().data(), w.bytes().size());
  EXPECT_EQ(r.Read(8), 0x0Fu);
}

TEST(BitstreamTest, ReaderPastEndReturnsZero) {
  BitWriter w;
  w.Write(0xFF, 8);
  BitReader r(w.bytes().data(), w.bytes().size());
  EXPECT_EQ(r.Read(8), 0xFFu);
  EXPECT_TRUE(r.Exhausted());
  EXPECT_EQ(r.Read(8), 0u);
}

TEST(BitstreamTest, RandomizedRoundTrip) {
  Rng rng(99);
  std::vector<std::pair<uint64_t, unsigned>> fields;
  BitWriter w;
  for (int i = 0; i < 1000; ++i) {
    const unsigned bits = 1 + static_cast<unsigned>(rng.Uniform(64));
    const uint64_t mask = bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
    const uint64_t value = rng.Next() & mask;
    fields.emplace_back(value, bits);
    w.Write(value, bits);
  }
  BitReader r(w.bytes().data(), w.bytes().size());
  for (const auto& [value, bits] : fields) {
    EXPECT_EQ(r.Read(bits), value);
  }
}

TEST(BitstreamTest, BitCountTracksExactly) {
  BitWriter w;
  size_t expect = 0;
  for (unsigned bits = 1; bits <= 13; ++bits) {
    w.Write(0, bits);
    expect += bits;
    EXPECT_EQ(w.BitCount(), expect);
  }
}

}  // namespace
}  // namespace rpdbscan
