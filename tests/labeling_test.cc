#include "core/labeling.h"

#include <gtest/gtest.h>

#include "core/cell_dictionary.h"
#include "core/phase2.h"
#include "synth/generators.h"

namespace rpdbscan {
namespace {

// Runs the full pipeline pieces up to labeling on a small data set.
struct Pipeline {
  Dataset data{2};
  GridGeometry geom;
  StatusOr<CellSet> cells = Status::Internal("unset");
  MergeResult merged;
  std::vector<uint8_t> point_is_core;
  Labels labels;

  Pipeline(Dataset ds, double eps, size_t min_pts, size_t parts)
      : data(std::move(ds)) {
    auto g = GridGeometry::Create(data.dim(), eps, 0.01);
    EXPECT_TRUE(g.ok());
    geom = *g;
    cells = CellSet::Build(data, geom, parts, 7);
    EXPECT_TRUE(cells.ok());
    auto dict = CellDictionary::Build(data, *cells);
    EXPECT_TRUE(dict.ok());
    ThreadPool pool(2);
    Phase2Result p2 = BuildSubgraphs(data, *cells, *dict, min_pts, pool);
    point_is_core = p2.point_is_core;
    merged = MergeSubgraphs(std::move(p2.subgraphs), cells->num_cells(),
                            MergeOptions());
    labels = LabelPoints(data, *cells, merged, point_is_core, pool);
  }
};

TEST(LabelingTest, CorePointsAreNeverNoise) {
  Pipeline p(synth::Blobs(3000, 3, 1.0, 1), /*eps=*/1.0, /*min_pts=*/20, 4);
  for (size_t i = 0; i < p.data.size(); ++i) {
    if (p.point_is_core[i] != 0) {
      EXPECT_NE(p.labels[i], kNoise) << "core point " << i << " is noise";
    }
  }
}

TEST(LabelingTest, PointsInCoreCellShareTheCellCluster) {
  Pipeline p(synth::Blobs(3000, 3, 1.0, 2), 1.0, 20, 4);
  for (uint32_t cid = 0; cid < p.cells->num_cells(); ++cid) {
    const uint32_t cluster = p.merged.core_cluster[cid];
    if (cluster == kNoCluster) continue;
    for (const uint32_t pid : p.cells->cell(cid).point_ids) {
      EXPECT_EQ(p.labels[pid], static_cast<int64_t>(cluster));
    }
  }
}

TEST(LabelingTest, BorderPointsAreWithinEpsOfTheirClustersCore) {
  Pipeline p(synth::Blobs(3000, 3, 1.0, 3), 1.0, 20, 4);
  const double eps2 = 1.0;
  for (uint32_t cid = 0; cid < p.cells->num_cells(); ++cid) {
    if (p.merged.core_cluster[cid] != kNoCluster) continue;
    for (const uint32_t q : p.cells->cell(cid).point_ids) {
      if (p.labels[q] == kNoise) continue;
      // Labeled border point: must be within eps of a core point with the
      // same label (Lemma 3.5, partial clause).
      bool justified = false;
      for (size_t i = 0; i < p.data.size() && !justified; ++i) {
        if (p.point_is_core[i] == 0) continue;
        if (p.labels[i] != p.labels[q]) continue;
        justified = DistanceSquared(p.data.point(q), p.data.point(i),
                                    p.data.dim()) <= eps2;
      }
      EXPECT_TRUE(justified) << "border point " << q << " unjustified";
    }
  }
}

TEST(LabelingTest, NoiseCellsWithoutPredecessorsStayNoise) {
  Pipeline p(synth::Blobs(2000, 3, 1.0, 4), 1.0, 20, 4);
  for (uint32_t cid = 0; cid < p.cells->num_cells(); ++cid) {
    if (p.merged.core_cluster[cid] != kNoCluster) continue;
    if (!p.merged.predecessors[cid].empty()) continue;
    for (const uint32_t q : p.cells->cell(cid).point_ids) {
      EXPECT_EQ(p.labels[q], kNoise);
    }
  }
}

TEST(LabelingTest, LabelCountMatchesDatasetSize) {
  Pipeline p(synth::Blobs(1000, 2, 1.5, 5), 1.0, 15, 3);
  EXPECT_EQ(p.labels.size(), p.data.size());
}

TEST(LabelingTest, SinglePartitionAndManyPartitionsAgree) {
  const Dataset ds = synth::Blobs(2500, 3, 1.0, 6);
  Pipeline one(ds, 1.0, 20, 1);
  Pipeline many(ds, 1.0, 20, 12);
  // Same clustering up to label permutation: compare co-membership on a
  // sample of pairs.
  for (size_t i = 0; i < 500; ++i) {
    const size_t a = (i * 7919) % ds.size();
    const size_t b = (i * 104729) % ds.size();
    const bool same_one = one.labels[a] == one.labels[b] &&
                          one.labels[a] != kNoise;
    const bool same_many = many.labels[a] == many.labels[b] &&
                           many.labels[a] != kNoise;
    EXPECT_EQ(same_one, same_many) << "pair " << a << "," << b;
  }
}

}  // namespace
}  // namespace rpdbscan
