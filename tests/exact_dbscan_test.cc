#include "baselines/exact_dbscan.h"

#include <gtest/gtest.h>

#include "metrics/cluster_stats.h"
#include "synth/generators.h"

namespace rpdbscan {
namespace {

TEST(ExactDbscanTest, RejectsBadInputs) {
  const Dataset empty(2);
  EXPECT_FALSE(RunExactDbscan(empty, {1.0, 5}).ok());
  Dataset one(2);
  one.Append({0, 0});
  EXPECT_FALSE(RunExactDbscan(one, {0.0, 5}).ok());
  EXPECT_FALSE(RunExactDbscan(one, {1.0, 0}).ok());
}

TEST(ExactDbscanTest, TwoWellSeparatedClusters) {
  Dataset ds(2);
  // Cluster A around (0,0), cluster B around (10,10), one far outlier.
  for (int i = 0; i < 10; ++i) {
    ds.Append({static_cast<float>(i % 3) * 0.1f,
               static_cast<float>(i / 3) * 0.1f});
  }
  for (int i = 0; i < 10; ++i) {
    ds.Append({10.0f + static_cast<float>(i % 3) * 0.1f,
               10.0f + static_cast<float>(i / 3) * 0.1f});
  }
  ds.Append({50, 50});
  auto r = RunExactDbscan(ds, {1.0, 5});
  ASSERT_TRUE(r.ok());
  const ClusterSummary s = Summarize(r->labels);
  EXPECT_EQ(s.num_clusters, 2u);
  EXPECT_EQ(s.num_noise, 1u);
  EXPECT_EQ(r->labels[20], kNoise);
  // All of A shares one label, all of B another.
  for (int i = 1; i < 10; ++i) EXPECT_EQ(r->labels[i], r->labels[0]);
  for (int i = 11; i < 20; ++i) EXPECT_EQ(r->labels[i], r->labels[10]);
  EXPECT_NE(r->labels[0], r->labels[10]);
}

TEST(ExactDbscanTest, MinPtsCountsThePointItself) {
  // Two points at distance 1, min_pts = 2: both are core (each has itself
  // plus the other within eps).
  Dataset ds(1);
  ds.Append({0});
  ds.Append({1});
  auto r = RunExactDbscan(ds, {1.0, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->point_is_core[0], 1);
  EXPECT_EQ(r->point_is_core[1], 1);
  EXPECT_EQ(r->labels[0], r->labels[1]);
}

TEST(ExactDbscanTest, BorderPointAdoptedNotCore) {
  // Dense clump + one point just within eps of only part of the clump:
  // its own neighborhood (3 points incl. itself) is below min_pts.
  Dataset ds(1);
  for (int i = 0; i < 5; ++i) ds.Append({static_cast<float>(i) * 0.01f});
  ds.Append({1.03f});
  auto r = RunExactDbscan(ds, {1.0, 5});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->point_is_core[5], 0);
  EXPECT_NE(r->labels[5], kNoise);  // border, adopted by the cluster
}

TEST(ExactDbscanTest, ChainExpansion) {
  // A long chain of points 0.5 apart with eps=0.6, min_pts=2: one cluster.
  Dataset ds(1);
  for (int i = 0; i < 100; ++i) ds.Append({static_cast<float>(i) * 0.5f});
  auto r = RunExactDbscan(ds, {0.6, 2});
  ASSERT_TRUE(r.ok());
  const ClusterSummary s = Summarize(r->labels);
  EXPECT_EQ(s.num_clusters, 1u);
  EXPECT_EQ(s.num_noise, 0u);
}

TEST(ExactDbscanTest, AllNoiseWhenSparse) {
  Dataset ds(2);
  for (int i = 0; i < 10; ++i) {
    ds.Append({static_cast<float>(i * 100), 0.0f});
  }
  auto r = RunExactDbscan(ds, {1.0, 3});
  ASSERT_TRUE(r.ok());
  for (const int64_t l : r->labels) EXPECT_EQ(l, kNoise);
  for (const uint8_t c : r->point_is_core) EXPECT_EQ(c, 0);
}

TEST(ExactDbscanTest, BlobsRecovered) {
  const Dataset ds = synth::Blobs(3000, 5, 0.5, 77);
  auto r = RunExactDbscan(ds, {0.6, 15});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Summarize(r->labels).num_clusters, 5u);
}

TEST(ExactDbscanTest, UnindexedModeMatchesIndexedMode) {
  // The SPARK-DBSCAN configuration disables the kd-tree; results must be
  // identical, only slower.
  const Dataset ds = synth::Blobs(1200, 4, 1.0, 79);
  auto indexed = RunExactDbscan(ds, {1.0, 10}, /*use_index=*/true);
  auto brute = RunExactDbscan(ds, {1.0, 10}, /*use_index=*/false);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ(indexed->labels, brute->labels);
  EXPECT_EQ(indexed->point_is_core, brute->point_is_core);
}

TEST(ExactDbscanTest, CoreFlagsConsistentWithLabels) {
  const Dataset ds = synth::Moons(1000, 0.05, 78);
  auto r = RunExactDbscan(ds, {0.1, 8});
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < ds.size(); ++i) {
    if (r->point_is_core[i] != 0) {
      EXPECT_NE(r->labels[i], kNoise) << "core point marked noise";
    }
  }
}

}  // namespace
}  // namespace rpdbscan
