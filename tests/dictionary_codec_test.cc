#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/cell_dictionary.h"
#include "core/cell_set.h"
#include "core/grid.h"
#include "synth/generators.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

struct Built {
  Dataset data{2};
  StatusOr<CellSet> cells = Status::Internal("unset");
  StatusOr<CellDictionary> dict = Status::Internal("unset");

  Built(Dataset ds, double eps, double rho) : data(std::move(ds)) {
    auto geom = GridGeometry::Create(data.dim(), eps, rho);
    EXPECT_TRUE(geom.ok());
    cells = CellSet::Build(data, *geom, 4, 7);
    EXPECT_TRUE(cells.ok());
    dict = CellDictionary::Build(data, *cells);
    EXPECT_TRUE(dict.ok());
  }
};

// Query result snapshot for comparing two dictionaries.
std::map<uint32_t, uint32_t> Snapshot(const CellDictionary& dict,
                                      const float* q) {
  std::map<uint32_t, uint32_t> out;
  dict.Query(q, [&](const DictCell& c, uint32_t n) { out[c.cell_id] += n; });
  return out;
}

TEST(DictionaryCodecTest, RoundTripPreservesStructure) {
  Built b(synth::Blobs(3000, 4, 1.5, 61), 1.0, 0.05);
  const std::vector<uint8_t> wire = b.dict->Serialize();
  auto back = CellDictionary::Deserialize(wire);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->num_cells(), b.dict->num_cells());
  EXPECT_EQ(back->num_subcells(), b.dict->num_subcells());
  EXPECT_EQ(back->SizeBitsLemma43(), b.dict->SizeBitsLemma43());
  EXPECT_EQ(back->geom().dim(), b.dict->geom().dim());
  EXPECT_DOUBLE_EQ(back->geom().eps(), b.dict->geom().eps());
  EXPECT_DOUBLE_EQ(back->geom().rho(), b.dict->geom().rho());
}

TEST(DictionaryCodecTest, RoundTripPreservesQueries) {
  Built b(synth::Blobs(2500, 3, 1.5, 62), 1.1, 0.05);
  auto back = CellDictionary::Deserialize(b.dict->Serialize());
  ASSERT_TRUE(back.ok());
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const float* q =
        b.data.point(static_cast<size_t>(rng.Uniform(b.data.size())));
    EXPECT_EQ(Snapshot(*b.dict, q), Snapshot(*back, q)) << trial;
  }
}

TEST(DictionaryCodecTest, RoundTripHighDimensional) {
  // 13-d: sub-cell positions exceed 64 bits (91 bits), exercising the
  // two-word bit packing.
  Built b(synth::TeraLike(1500, 63), 20.0, 0.01);
  auto back = CellDictionary::Deserialize(b.dict->Serialize());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->num_subcells(), b.dict->num_subcells());
  for (size_t i = 0; i < 20; ++i) {
    const float* q = b.data.point(i * 7);
    EXPECT_EQ(Snapshot(*b.dict, q), Snapshot(*back, q));
  }
}

TEST(DictionaryCodecTest, WireSizeTracksLemma43) {
  Built b(synth::Blobs(5000, 4, 1.5, 64), 1.0, 0.05);
  const std::vector<uint8_t> wire = b.dict->Serialize();
  const size_t lemma = b.dict->SizeBytesLemma43();
  // The wire format adds a header plus one 32-bit id and one 32-bit
  // sub-cell count per cell beyond Eq. (1)'s accounting.
  const size_t overhead = 64 + 8 * b.dict->num_cells() + 16;
  EXPECT_GE(wire.size(), lemma * 9 / 10);
  EXPECT_LE(wire.size(), lemma + overhead);
}

TEST(DictionaryCodecTest, NegativeCellCoordinatesSurvive) {
  Dataset ds(2);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    ds.Append({static_cast<float>(rng.UniformDouble(-50, 50)),
               static_cast<float>(rng.UniformDouble(-50, 50))});
  }
  Built b(std::move(ds), 2.0, 0.1);
  auto back = CellDictionary::Deserialize(b.dict->Serialize());
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < 20; ++i) {
    const float* q = b.data.point(i);
    EXPECT_EQ(Snapshot(*b.dict, q), Snapshot(*back, q));
  }
}

TEST(DictionaryCodecTest, RejectsBadMagic) {
  Built b(synth::Blobs(200, 2, 1.5, 65), 1.0, 0.1);
  std::vector<uint8_t> wire = b.dict->Serialize();
  wire[0] ^= 0xFF;
  EXPECT_FALSE(CellDictionary::Deserialize(wire).ok());
}

TEST(DictionaryCodecTest, RejectsBadVersion) {
  Built b(synth::Blobs(200, 2, 1.5, 66), 1.0, 0.1);
  std::vector<uint8_t> wire = b.dict->Serialize();
  wire[4] = 0x7F;
  EXPECT_FALSE(CellDictionary::Deserialize(wire).ok());
}

TEST(DictionaryCodecTest, RejectsEmptyAndTinyBuffers) {
  EXPECT_FALSE(CellDictionary::Deserialize({}).ok());
  EXPECT_FALSE(CellDictionary::Deserialize({0x44, 0x44, 0x50, 0x52}).ok());
}

TEST(DictionaryCodecTest, RejectsAllTruncations) {
  // Every strict prefix of a valid buffer must be rejected, never crash.
  Built b(synth::Blobs(300, 3, 1.5, 67), 1.0, 0.1);
  const std::vector<uint8_t> wire = b.dict->Serialize();
  for (size_t len = 0; len < wire.size();
       len += (len < 64 ? 1 : 97)) {  // dense near the header, then strided
    const std::vector<uint8_t> prefix(wire.begin(), wire.begin() + len);
    EXPECT_FALSE(CellDictionary::Deserialize(prefix).ok())
        << "prefix of " << len << " bytes accepted";
  }
}

TEST(DictionaryCodecTest, FuzzRandomCorruptionNeverCrashes) {
  Built b(synth::Blobs(400, 3, 1.5, 68), 1.0, 0.1);
  const std::vector<uint8_t> wire = b.dict->Serialize();
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> corrupt = wire;
    const int flips = 1 + static_cast<int>(rng.Uniform(8));
    for (int f = 0; f < flips; ++f) {
      corrupt[rng.Uniform(corrupt.size())] ^=
          static_cast<uint8_t>(1u << rng.Uniform(8));
    }
    // Must either fail cleanly or decode into *some* structurally valid
    // dictionary; both are fine, crashing/UB is not.
    auto r = CellDictionary::Deserialize(corrupt);
    if (r.ok()) {
      EXPECT_EQ(r->num_cells() == 0, false);
    }
  }
}

TEST(DictionaryCodecTest, DeserializeHonorsReceiverOptions) {
  Built b(synth::Blobs(4000, 5, 1.5, 69), 0.8, 0.1);
  CellDictionaryOptions small;
  small.max_cells_per_subdict = 16;
  auto back = CellDictionary::Deserialize(b.dict->Serialize(), small);
  ASSERT_TRUE(back.ok());
  EXPECT_GT(back->num_subdictionaries(),
            b.dict->num_subdictionaries());
  // Queries unchanged regardless of fragmentation.
  for (size_t i = 0; i < 10; ++i) {
    const float* q = b.data.point(i * 31);
    EXPECT_EQ(Snapshot(*b.dict, q), Snapshot(*back, q));
  }
}

}  // namespace
}  // namespace rpdbscan
