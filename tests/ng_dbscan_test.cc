#include "baselines/ng_dbscan.h"

#include <gtest/gtest.h>

#include "baselines/exact_dbscan.h"
#include "metrics/cluster_stats.h"
#include "metrics/rand_index.h"
#include "synth/generators.h"

namespace rpdbscan {
namespace {

TEST(NgDbscanTest, RejectsBadInputs) {
  const Dataset empty(2);
  NgDbscanOptions o;
  o.params = {1.0, 5};
  EXPECT_FALSE(RunNgDbscan(empty, o).ok());
  const Dataset ds = synth::Blobs(50, 1, 1.0, 1);
  o.params = {0.0, 5};
  EXPECT_FALSE(RunNgDbscan(ds, o).ok());
  o.params = {1.0, 0};
  EXPECT_FALSE(RunNgDbscan(ds, o).ok());
}

TEST(NgDbscanTest, RecoversWellSeparatedBlobs) {
  const Dataset ds = synth::Blobs(3000, 4, 0.8, 2);
  NgDbscanOptions o;
  o.params = {1.5, 10};
  o.max_iterations = 20;
  o.seed = 3;
  auto r = RunNgDbscan(ds, o);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(Summarize(r->labels).num_clusters, 4u);
  EXPECT_GT(r->iterations_run, 0u);
  EXPECT_LE(r->iterations_run, 20u);
}

TEST(NgDbscanTest, ApproximatesExactDbscan) {
  // NG-DBSCAN is an approximation (Sec. 2.2.3): expect high but not
  // necessarily perfect agreement on easy data.
  const Dataset ds = synth::Blobs(2500, 3, 0.7, 4);
  NgDbscanOptions o;
  o.params = {1.5, 10};
  o.max_iterations = 25;
  auto ng = RunNgDbscan(ds, o);
  ASSERT_TRUE(ng.ok());
  auto exact = RunExactDbscan(ds, {1.5, 10});
  ASSERT_TRUE(exact.ok());
  auto ri = RandIndex(ng->labels, exact->labels);
  ASSERT_TRUE(ri.ok());
  EXPECT_GE(*ri, 0.95);
}

TEST(NgDbscanTest, SparseDataAllNoise) {
  Dataset ds(2);
  for (int i = 0; i < 200; ++i) {
    ds.Append({static_cast<float>(i * 50), static_cast<float>(i % 7)});
  }
  NgDbscanOptions o;
  o.params = {1.0, 5};
  auto r = RunNgDbscan(ds, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_clusters, 0u);
  for (const int64_t l : r->labels) EXPECT_EQ(l, kNoise);
}

TEST(NgDbscanTest, TimingFieldsPopulated) {
  const Dataset ds = synth::Blobs(500, 2, 1.0, 5);
  NgDbscanOptions o;
  o.params = {1.5, 8};
  auto r = RunNgDbscan(ds, o);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->graph_seconds, 0.0);
  EXPECT_GE(r->cluster_seconds, 0.0);
  EXPECT_GE(r->total_seconds, r->graph_seconds);
}

TEST(NgDbscanTest, DeterministicForSeed) {
  const Dataset ds = synth::Blobs(800, 3, 1.0, 6);
  NgDbscanOptions o;
  o.params = {1.5, 8};
  o.seed = 42;
  auto a = RunNgDbscan(ds, o);
  auto b = RunNgDbscan(ds, o);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
}

}  // namespace
}  // namespace rpdbscan
