// Degenerate-input conventions of the clustering-agreement metrics,
// pinned so the hierarchy scoring path (sampled-core vs exact) never
// trips over an all-noise level, a single-cluster level, or an empty
// labeling. nmi.h / rand_index.h document exactly what this suite pins.

#include <gtest/gtest.h>

#include "io/dataset.h"
#include "metrics/nmi.h"
#include "metrics/rand_index.h"

namespace rpdbscan {
namespace {

const Labels kAllNoise = {kNoise, kNoise, kNoise, kNoise};
const Labels kOneClusterLabels = {0, 0, 0, 0};
const Labels kTwoClusters = {0, 0, 1, 1};

TEST(MetricsEdgeCaseTest, EmptyLabelingsArePerfectAgreement) {
  const Labels empty;
  for (const NoiseHandling noise :
       {NoiseHandling::kSingleton, NoiseHandling::kOneCluster}) {
    auto ri = RandIndex(empty, empty, noise);
    ASSERT_TRUE(ri.ok()) << ri.status();
    EXPECT_DOUBLE_EQ(*ri, 1.0);
    auto ari = AdjustedRandIndex(empty, empty, noise);
    ASSERT_TRUE(ari.ok()) << ari.status();
    EXPECT_DOUBLE_EQ(*ari, 1.0);
    auto nmi = NormalizedMutualInformation(empty, empty, noise);
    ASSERT_TRUE(nmi.ok()) << nmi.status();
    EXPECT_DOUBLE_EQ(*nmi, 1.0);
  }
}

TEST(MetricsEdgeCaseTest, AllNoiseAgreesWithItselfUnderBothModes) {
  for (const NoiseHandling noise :
       {NoiseHandling::kSingleton, NoiseHandling::kOneCluster}) {
    auto ri = RandIndex(kAllNoise, kAllNoise, noise);
    ASSERT_TRUE(ri.ok()) << ri.status();
    EXPECT_DOUBLE_EQ(*ri, 1.0);
    auto nmi = NormalizedMutualInformation(kAllNoise, kAllNoise, noise);
    ASSERT_TRUE(nmi.ok()) << nmi.status();
    EXPECT_DOUBLE_EQ(*nmi, 1.0);
  }
}

TEST(MetricsEdgeCaseTest, AllNoiseVersusOneClusterDependsOnNoiseMode) {
  // Singleton mode: noise points are all separate, the single cluster
  // puts every pair together — total disagreement. One-cluster mode: the
  // noise points form one cluster themselves — total agreement.
  auto ri_singleton =
      RandIndex(kAllNoise, kOneClusterLabels, NoiseHandling::kSingleton);
  ASSERT_TRUE(ri_singleton.ok()) << ri_singleton.status();
  EXPECT_DOUBLE_EQ(*ri_singleton, 0.0);
  auto ri_one =
      RandIndex(kAllNoise, kOneClusterLabels, NoiseHandling::kOneCluster);
  ASSERT_TRUE(ri_one.ok()) << ri_one.status();
  EXPECT_DOUBLE_EQ(*ri_one, 1.0);

  auto nmi_singleton = NormalizedMutualInformation(
      kAllNoise, kOneClusterLabels, NoiseHandling::kSingleton);
  ASSERT_TRUE(nmi_singleton.ok()) << nmi_singleton.status();
  EXPECT_DOUBLE_EQ(*nmi_singleton, 0.0);
  auto nmi_one = NormalizedMutualInformation(kAllNoise, kOneClusterLabels,
                                             NoiseHandling::kOneCluster);
  ASSERT_TRUE(nmi_one.ok()) << nmi_one.status();
  EXPECT_DOUBLE_EQ(*nmi_one, 1.0);
}

TEST(MetricsEdgeCaseTest, SingleClusterBothSidesIsPerfect) {
  for (const NoiseHandling noise :
       {NoiseHandling::kSingleton, NoiseHandling::kOneCluster}) {
    auto ri = RandIndex(kOneClusterLabels, kOneClusterLabels, noise);
    ASSERT_TRUE(ri.ok()) << ri.status();
    EXPECT_DOUBLE_EQ(*ri, 1.0);
    auto nmi = NormalizedMutualInformation(kOneClusterLabels,
                                           kOneClusterLabels, noise);
    ASSERT_TRUE(nmi.ok()) << nmi.status();
    EXPECT_DOUBLE_EQ(*nmi, 1.0);
  }
}

TEST(MetricsEdgeCaseTest, OneTrivialSideScoresZeroNmi) {
  // Exactly one side carries structure: mutual information is zero, and
  // the zero-entropy denominator resolves to 0, not NaN.
  auto nmi = NormalizedMutualInformation(kOneClusterLabels, kTwoClusters);
  ASSERT_TRUE(nmi.ok()) << nmi.status();
  EXPECT_DOUBLE_EQ(*nmi, 0.0);
  auto flipped = NormalizedMutualInformation(kTwoClusters, kOneClusterLabels);
  ASSERT_TRUE(flipped.ok()) << flipped.status();
  EXPECT_DOUBLE_EQ(*flipped, 0.0);
}

TEST(MetricsEdgeCaseTest, SinglePointIsPerfect) {
  const Labels a = {5};
  const Labels b = {kNoise};
  auto ri = RandIndex(a, b);
  ASSERT_TRUE(ri.ok()) << ri.status();
  EXPECT_DOUBLE_EQ(*ri, 1.0);  // no pairs to disagree on
}

TEST(MetricsEdgeCaseTest, SizeMismatchStillFails) {
  const Labels a = {0, 1};
  const Labels b = {0};
  EXPECT_FALSE(RandIndex(a, b).ok());
  EXPECT_FALSE(AdjustedRandIndex(a, b).ok());
  EXPECT_FALSE(NormalizedMutualInformation(a, b).ok());
}

}  // namespace
}  // namespace rpdbscan
