// End-to-end tests of the rpdbscan_cli binary: drive the real executable
// (path injected via the RPDBSCAN_CLI environment variable from CMake)
// through its main flows and check exit codes and produced artifacts.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "io/csv.h"

namespace rpdbscan {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* cli = std::getenv("RPDBSCAN_CLI");
    ASSERT_NE(cli, nullptr)
        << "RPDBSCAN_CLI must point at the rpdbscan_cli binary";
    cli_ = cli;
    dir_ = ::testing::TempDir() + "/cli_test_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::string mkdir = "mkdir -p " + dir_;
    ASSERT_EQ(std::system(mkdir.c_str()), 0);
  }
  void TearDown() override {
    const std::string rm = "rm -rf " + dir_;
    (void)std::system(rm.c_str());
  }

  int Run(const std::string& args) {
    const std::string cmd = cli_ + " " + args + " > " + dir_ +
                            "/stdout.txt 2> " + dir_ + "/stderr.txt";
    const int rc = std::system(cmd.c_str());
    return rc == -1 ? -1 : WEXITSTATUS(rc);
  }

  std::string Stdout() {
    std::ifstream in(dir_ + "/stdout.txt");
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  std::string cli_;
  std::string dir_;
};

TEST_F(CliTest, HelpExitsZero) {
  EXPECT_EQ(Run("--help"), 0);
  EXPECT_NE(Stdout().find("usage:"), std::string::npos);
}

TEST_F(CliTest, MissingInputFails) {
  EXPECT_NE(Run("--eps=1"), 0);
}

TEST_F(CliTest, GenerateAndCluster) {
  EXPECT_EQ(Run("--generate=blobs --n=5000 --eps=1.0 --minpts=15"), 0);
  EXPECT_NE(Stdout().find("clusters"), std::string::npos);
}

TEST_F(CliTest, LabelsWrittenAndReadable) {
  const std::string out = dir_ + "/labels.csv";
  ASSERT_EQ(Run("--generate=moons --n=3000 --eps=0.07 --minpts=10 "
                "--output=" +
                out),
            0);
  auto ds = ReadCsv(out);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->size(), 3000u);
  EXPECT_EQ(ds->dim(), 3u);  // x, y, label
}

TEST_F(CliTest, CsvRoundTripThroughConvert) {
  // Generate labeled CSV, strip labels? Simpler: generate -> convert to
  // rpds -> cluster the rpds.
  const std::string csv = dir_ + "/points.csv";
  ASSERT_EQ(Run("--generate=blobs --n=2000 --eps=1 --minpts=10 --output=" +
                csv),
            0);
  // The output has a label column; cluster it anyway in 3-d (works), or
  // convert then cluster.
  const std::string rpds = dir_ + "/points.rpds";
  ASSERT_EQ(Run("--input=" + csv + " --convert=" + rpds), 0);
  EXPECT_EQ(Run("--input=" + rpds + " --eps=1.0 --minpts=10"), 0);
}

TEST_F(CliTest, AllAlgorithmsRun) {
  for (const char* algo :
       {"rp", "exact", "esp", "rbp", "cbp", "spark", "ng", "naive"}) {
    EXPECT_EQ(Run(std::string("--generate=blobs --n=1200 --eps=1.0 "
                              "--minpts=8 --algo=") +
                  algo),
              0)
        << algo;
  }
}

TEST_F(CliTest, UnknownAlgorithmFails) {
  EXPECT_NE(Run("--generate=blobs --n=100 --eps=1 --algo=optics"), 0);
}

TEST_F(CliTest, KdistDiagnostic) {
  EXPECT_EQ(Run("--generate=blobs --n=3000 --kdist=10"), 0);
  EXPECT_NE(Stdout().find("quantiles"), std::string::npos);
}

TEST_F(CliTest, NormalizeModes) {
  EXPECT_EQ(
      Run("--generate=blobs --n=1000 --eps=5 --minpts=8 --normalize=minmax"),
      0);
  EXPECT_NE(
      Run("--generate=blobs --n=1000 --eps=5 --minpts=8 --normalize=bogus"),
      0);
}

// End-to-end `stream`: ingest batches, publish epochs with the full
// against-run audit, persist .rpsnap files, and emit the JSON stats; the
// persisted final epoch must load back into `serve`.
TEST_F(CliTest, StreamPublishesAuditedEpochs) {
  const std::string epochs = dir_ + "/epochs";
  ASSERT_EQ(std::system(("mkdir -p " + epochs).c_str()), 0);
  const std::string stats = dir_ + "/stream.json";
  const std::string labels = dir_ + "/stream_labels.csv";
  ASSERT_EQ(Run("stream --generate=blobs --n=2500 --eps=1.0 --minpts=10 "
                "--seed-points=2000 --batch-size=250 --epoch-every=1 "
                "--audit=full --threads=2 --epoch-dir=" +
                epochs + " --stats-json=" + stats + " --output=" + labels),
            0);
  const std::string out = Stdout();
  EXPECT_NE(out.find("epoch 0:"), std::string::npos);
  EXPECT_NE(out.find("epoch 2:"), std::string::npos);
  EXPECT_NE(out.find("[audit pass]"), std::string::npos);
  EXPECT_NE(out.find("stream done: 3 epochs"), std::string::npos);

  std::ifstream stats_in(stats);
  const std::string json((std::istreambuf_iterator<char>(stats_in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"dirty_cells\""), std::string::npos);
  EXPECT_NE(json.find("\"reclustered_points\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch_publish_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"epochs_published\": 3"), std::string::npos);

  auto ds = ReadCsv(labels);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->size(), 2500u);

  // The last persisted epoch is a regular snapshot: serve from it (the
  // labels CSV has a label column, so hand-write 2-d queries instead).
  const std::string queries = dir_ + "/queries.csv";
  {
    std::ofstream q(queries);
    q << "0.0,0.0\n1.5,-2.0\n10.0,10.0\n";
  }
  EXPECT_EQ(Run("serve --snapshot=" + epochs + "/epoch-2.rpsnap --verify "
                "--queries=" + queries),
            0);
}

TEST_F(CliTest, StreamRejectsBadAuditLevel) {
  EXPECT_NE(Run("stream --generate=blobs --n=500 --eps=1.0 --minpts=10 "
                "--audit=bogus"),
            0);
}

TEST_F(CliTest, BadNumericFlagFails) {
  EXPECT_NE(Run("--generate=blobs --n=abc --eps=1"), 0);
}

}  // namespace
}  // namespace rpdbscan
