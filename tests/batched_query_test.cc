// Randomized equivalence of the two Phase II query engines: the batched
// per-cell kernel (CellDictionary::QueryCell + flat scan) must reproduce
// the reference per-point Query path bit-for-bit — same core points, same
// core cells, same edge sets — across dimensionalities, candidate index
// types, sub-dictionary skipping on/off, and min_pts values on both sides
// of the early-exit threshold.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/phase2.h"
#include "synth/generators.h"
#include "verify/audit.h"

#include "test_seed.h"

namespace rpdbscan {
namespace {

struct EngineConfig {
  double eps = 1.0;
  double rho = 0.05;
  size_t partitions = 5;
  size_t min_pts = 20;
  bool use_rtree = false;
  bool skipping = true;
  bool defragment = true;
};

std::vector<std::tuple<uint32_t, uint32_t>> CanonicalEdges(
    const Phase2Result& r) {
  std::vector<std::tuple<uint32_t, uint32_t>> edges;
  for (const CellSubgraph& g : r.subgraphs) {
    for (const CellEdge& e : g.edges) {
      EXPECT_EQ(e.type, EdgeType::kUndetermined);
      edges.emplace_back(e.from, e.to);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Runs both engines on one pipeline and asserts identical output.
/// Returns the batched result for counter assertions.
Phase2Result ExpectEquivalent(const Dataset& data, const EngineConfig& cfg) {
  auto geom = GridGeometry::Create(data.dim(), cfg.eps, cfg.rho);
  EXPECT_TRUE(geom.ok());
  auto cells = CellSet::Build(data, *geom, cfg.partitions, 7);
  EXPECT_TRUE(cells.ok());
  CellDictionaryOptions dict_opts;
  dict_opts.max_cells_per_subdict = 64;  // force several sub-dictionaries
  dict_opts.defragment = cfg.defragment;
  dict_opts.enable_skipping = cfg.skipping;
  dict_opts.index =
      cfg.use_rtree ? CandidateIndex::kRTree : CandidateIndex::kKdTree;
  auto dict = CellDictionary::Build(data, *cells, dict_opts);
  EXPECT_TRUE(dict.ok());
  ThreadPool pool(3);

  Phase2Options per_point;
  per_point.batched_queries = false;
  Phase2Options batched;
  batched.batched_queries = true;
  const Phase2Result a =
      BuildSubgraphs(data, *cells, *dict, cfg.min_pts, pool, per_point);
  const Phase2Result b =
      BuildSubgraphs(data, *cells, *dict, cfg.min_pts, pool, batched);

  EXPECT_EQ(a.point_is_core, b.point_is_core);
  EXPECT_EQ(a.cell_is_core, b.cell_is_core);
  EXPECT_EQ(CanonicalEdges(a), CanonicalEdges(b));
  // Every configuration also runs the structural auditors at kFull: both
  // engines must emit invariant-clean structures, not merely equal ones.
  const AuditReport cell_audit = AuditCellSet(data, *cells, AuditLevel::kFull);
  EXPECT_TRUE(cell_audit.ok()) << cell_audit.ToString();
  const AuditReport dict_audit =
      AuditDictionary(data, *cells, *dict, AuditLevel::kFull);
  EXPECT_TRUE(dict_audit.ok()) << dict_audit.ToString();
  for (const Phase2Result* r : {&a, &b}) {
    const AuditReport graph_audit =
        AuditCellGraph(data, *cells, *r, AuditLevel::kFull);
    EXPECT_TRUE(graph_audit.ok()) << graph_audit.ToString();
  }
  // The reference path issues one sub-dictionary sweep per point, the
  // batched kernel one per cell. (visited is not compared: the cell-level
  // skip test is box-based and so more conservative than the per-point
  // one — with single-point cells batched can visit slightly more.)
  EXPECT_LE(b.subdict_possible, a.subdict_possible);
  EXPECT_LE(b.subdict_visited, b.subdict_possible);
  EXPECT_EQ(a.candidate_cells_scanned, 0u);
  EXPECT_EQ(a.early_exits, 0u);
  return b;
}

TEST(BatchedQueryTest, RandomizedAcrossDimsIndexesAndSkipping) {
  uint64_t seed = TestSeed(1000);
  SCOPED_TRACE(SeedNote(seed));
  for (size_t dim = 2; dim <= 5; ++dim) {
    const Dataset data = synth::Blobs(1200, 4, 2.0, ++seed, dim);
    for (const bool rtree : {false, true}) {
      for (const bool skipping : {true, false}) {
        SCOPED_TRACE("dim=" + std::to_string(dim) +
                     " rtree=" + std::to_string(rtree) +
                     " skip=" + std::to_string(skipping));
        EngineConfig cfg;
        cfg.eps = 2.5;
        cfg.min_pts = 20;
        cfg.use_rtree = rtree;
        cfg.skipping = skipping;
        ExpectEquivalent(data, cfg);
      }
    }
  }
}

TEST(BatchedQueryTest, MinPtsOnBothSidesOfEarlyExit) {
  const uint64_t seed = TestSeed(77);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset data = synth::Blobs(1500, 3, 1.5, seed, 3);
  // min_pts = 1: every point is core before or at its first candidate —
  // maximal early exits. min_pts = 1e6: no cell's candidate densities can
  // add up, so the upper-bound cutoff rejects every point with zero scans
  // and zero early exits.
  for (const size_t min_pts : {size_t{1}, size_t{25}, size_t{1000000}}) {
    EngineConfig cfg;
    cfg.eps = 1.2;
    cfg.min_pts = min_pts;
    const Phase2Result b = ExpectEquivalent(data, cfg);
    if (min_pts == 1) {
      EXPECT_GT(b.early_exits, 0u);
    } else if (min_pts == 25) {
      EXPECT_GT(b.candidate_cells_scanned, 0u);
    } else {
      EXPECT_EQ(b.early_exits, 0u);
      EXPECT_EQ(b.candidate_cells_scanned, 0u);
    }
  }
}

TEST(BatchedQueryTest, SkewedGeoLifeAnalogue) {
  // The workload the kernel is optimized for: one super-dense component
  // where per-cell batching amortizes the most.
  const uint64_t seed = TestSeed(901);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset data = synth::GeoLifeLike(4000, seed);
  for (const bool rtree : {false, true}) {
    EngineConfig cfg;
    cfg.eps = 2.0;
    cfg.rho = 0.01;
    cfg.min_pts = 20;
    cfg.use_rtree = rtree;
    const Phase2Result b = ExpectEquivalent(data, cfg);
    EXPECT_GT(b.early_exits, 0u);  // dense cells prove coreness early
  }
}

TEST(BatchedQueryTest, MonolithicDictionaryAndTinyCells) {
  // No defragmentation (single sub-dictionary) plus an eps small enough
  // that many cells hold a single point: exercises empty candidate lists
  // and always-contained-only paths.
  const uint64_t seed = TestSeed(5);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset data = synth::Moons(800, 0.05, seed);
  EngineConfig cfg;
  cfg.eps = 0.05;
  cfg.rho = 0.25;
  cfg.min_pts = 3;
  cfg.defragment = false;
  ExpectEquivalent(data, cfg);
}

}  // namespace
}  // namespace rpdbscan
