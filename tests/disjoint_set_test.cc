#include "graph/disjoint_set.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "util/random.h"

namespace rpdbscan {
namespace {

TEST(DisjointSetTest, StartsAsSingletons) {
  DisjointSet dsu(5);
  EXPECT_EQ(dsu.size(), 5u);
  EXPECT_EQ(dsu.num_components(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(dsu.Find(i), i);
}

TEST(DisjointSetTest, UnionMergesComponents) {
  DisjointSet dsu(4);
  EXPECT_TRUE(dsu.Union(0, 1));
  EXPECT_EQ(dsu.num_components(), 3u);
  EXPECT_EQ(dsu.Find(0), dsu.Find(1));
  EXPECT_NE(dsu.Find(0), dsu.Find(2));
}

TEST(DisjointSetTest, RedundantUnionReturnsFalse) {
  DisjointSet dsu(3);
  EXPECT_TRUE(dsu.Union(0, 1));
  EXPECT_FALSE(dsu.Union(1, 0));
  EXPECT_FALSE(dsu.Union(0, 1));
  EXPECT_EQ(dsu.num_components(), 2u);
}

TEST(DisjointSetTest, TransitiveConnectivity) {
  DisjointSet dsu(5);
  dsu.Union(0, 1);
  dsu.Union(1, 2);
  dsu.Union(3, 4);
  EXPECT_EQ(dsu.Find(0), dsu.Find(2));
  EXPECT_EQ(dsu.Find(3), dsu.Find(4));
  EXPECT_NE(dsu.Find(2), dsu.Find(3));
  EXPECT_EQ(dsu.num_components(), 2u);
}

TEST(DisjointSetTest, AddExtendsSet) {
  DisjointSet dsu(2);
  const uint32_t id = dsu.Add();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(dsu.size(), 3u);
  EXPECT_EQ(dsu.num_components(), 3u);
  EXPECT_TRUE(dsu.Union(0, id));
  EXPECT_EQ(dsu.Find(id), dsu.Find(0));
}

TEST(DisjointSetTest, SpanningForestEdgeCount) {
  // Union over random edges: the number of true returns must equal
  // n - num_components (the spanning forest size) — the property the
  // paper's edge reduction relies on (Sec. 6.1.4).
  const size_t n = 500;
  DisjointSet dsu(n);
  Rng rng(5);
  size_t forest_edges = 0;
  for (int i = 0; i < 2000; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(n));
    const uint32_t b = static_cast<uint32_t>(rng.Uniform(n));
    if (a == b) continue;
    if (dsu.Union(a, b)) ++forest_edges;
  }
  EXPECT_EQ(forest_edges, n - dsu.num_components());
}

TEST(DisjointSetTest, LargeChainPathCompression) {
  const size_t n = 100000;
  DisjointSet dsu(n);
  for (uint32_t i = 0; i + 1 < n; ++i) dsu.Union(i, i + 1);
  EXPECT_EQ(dsu.num_components(), 1u);
  EXPECT_EQ(dsu.Find(0), dsu.Find(static_cast<uint32_t>(n - 1)));
}

TEST(ConcurrentDisjointSetTest, SequentialUseMatchesReference) {
  // Single-threaded, the concurrent set is just a union-find whose
  // quiescent representative is the component minimum.
  const size_t n = 300;
  ConcurrentDisjointSet con(n);
  DisjointSet ref(n);
  Rng rng(11);
  size_t con_true = 0;
  size_t ref_true = 0;
  for (int i = 0; i < 1500; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(n));
    const uint32_t b = static_cast<uint32_t>(rng.Uniform(n));
    if (a == b) continue;
    con_true += con.Union(a, b);
    ref_true += ref.Union(a, b);
  }
  EXPECT_EQ(con_true, ref_true);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      EXPECT_EQ(con.Find(i) == con.Find(j), ref.Find(i) == ref.Find(j));
    }
  }
}

TEST(ConcurrentDisjointSetTest, QuiescentFindIsComponentMinimum) {
  const size_t n = 200;
  ConcurrentDisjointSet dsu(n);
  Rng rng(12);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (int i = 0; i < 600; ++i) {
    edges.emplace_back(static_cast<uint32_t>(rng.Uniform(n)),
                       static_cast<uint32_t>(rng.Uniform(n)));
  }
  for (const auto& [a, b] : edges) {
    if (a != b) dsu.Union(a, b);
  }
  // Brute-force component minima from the edge list.
  DisjointSet ref(n);
  for (const auto& [a, b] : edges) {
    if (a != b) ref.Union(a, b);
  }
  std::vector<uint32_t> min_of(n);
  for (uint32_t i = 0; i < n; ++i) min_of[i] = i;
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t r = ref.Find(i);
    if (i < min_of[r]) min_of[r] = i;
    if (min_of[r] < min_of[i]) min_of[i] = min_of[r];
  }
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(dsu.Find(i), min_of[ref.Find(i)]) << "element " << i;
  }
}

TEST(ConcurrentDisjointSetTest, ConcurrentUnionsAccountingAndPartition) {
  // The TSan-covered stress: several threads hammer disjoint shards of
  // one random edge list. Across all threads exactly
  // n - #components Unions may return true, and the final partition must
  // equal the sequential reference no matter the interleaving.
  const size_t n = 2000;
  const size_t num_threads = 8;
  Rng rng(13);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (int i = 0; i < 12000; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(n));
    const uint32_t b = static_cast<uint32_t>(rng.Uniform(n));
    if (a != b) edges.emplace_back(a, b);
  }
  ConcurrentDisjointSet dsu(n);
  std::atomic<size_t> forest_edges{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      size_t local = 0;
      for (size_t i = t; i < edges.size(); i += num_threads) {
        local += dsu.Union(edges[i].first, edges[i].second);
      }
      forest_edges.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (std::thread& th : threads) th.join();

  DisjointSet ref(n);
  for (const auto& [a, b] : edges) ref.Union(a, b);
  EXPECT_EQ(forest_edges.load(), n - ref.num_components());
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(dsu.Find(i) == dsu.Find(ref.Find(i)), true);
    EXPECT_EQ(dsu.Find(i) <= i, true);  // links point to smaller ids
  }
  // Same-component iff same representative, spot-checked on a sample.
  for (int s = 0; s < 4000; ++s) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(n));
    const uint32_t b = static_cast<uint32_t>(rng.Uniform(n));
    EXPECT_EQ(dsu.Find(a) == dsu.Find(b), ref.Find(a) == ref.Find(b));
  }
}

}  // namespace
}  // namespace rpdbscan
