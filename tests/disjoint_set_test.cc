#include "graph/disjoint_set.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace rpdbscan {
namespace {

TEST(DisjointSetTest, StartsAsSingletons) {
  DisjointSet dsu(5);
  EXPECT_EQ(dsu.size(), 5u);
  EXPECT_EQ(dsu.num_components(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(dsu.Find(i), i);
}

TEST(DisjointSetTest, UnionMergesComponents) {
  DisjointSet dsu(4);
  EXPECT_TRUE(dsu.Union(0, 1));
  EXPECT_EQ(dsu.num_components(), 3u);
  EXPECT_EQ(dsu.Find(0), dsu.Find(1));
  EXPECT_NE(dsu.Find(0), dsu.Find(2));
}

TEST(DisjointSetTest, RedundantUnionReturnsFalse) {
  DisjointSet dsu(3);
  EXPECT_TRUE(dsu.Union(0, 1));
  EXPECT_FALSE(dsu.Union(1, 0));
  EXPECT_FALSE(dsu.Union(0, 1));
  EXPECT_EQ(dsu.num_components(), 2u);
}

TEST(DisjointSetTest, TransitiveConnectivity) {
  DisjointSet dsu(5);
  dsu.Union(0, 1);
  dsu.Union(1, 2);
  dsu.Union(3, 4);
  EXPECT_EQ(dsu.Find(0), dsu.Find(2));
  EXPECT_EQ(dsu.Find(3), dsu.Find(4));
  EXPECT_NE(dsu.Find(2), dsu.Find(3));
  EXPECT_EQ(dsu.num_components(), 2u);
}

TEST(DisjointSetTest, AddExtendsSet) {
  DisjointSet dsu(2);
  const uint32_t id = dsu.Add();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(dsu.size(), 3u);
  EXPECT_EQ(dsu.num_components(), 3u);
  EXPECT_TRUE(dsu.Union(0, id));
  EXPECT_EQ(dsu.Find(id), dsu.Find(0));
}

TEST(DisjointSetTest, SpanningForestEdgeCount) {
  // Union over random edges: the number of true returns must equal
  // n - num_components (the spanning forest size) — the property the
  // paper's edge reduction relies on (Sec. 6.1.4).
  const size_t n = 500;
  DisjointSet dsu(n);
  Rng rng(5);
  size_t forest_edges = 0;
  for (int i = 0; i < 2000; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(n));
    const uint32_t b = static_cast<uint32_t>(rng.Uniform(n));
    if (a == b) continue;
    if (dsu.Union(a, b)) ++forest_edges;
  }
  EXPECT_EQ(forest_edges, n - dsu.num_components());
}

TEST(DisjointSetTest, LargeChainPathCompression) {
  const size_t n = 100000;
  DisjointSet dsu(n);
  for (uint32_t i = 0; i + 1 < n; ++i) dsu.Union(i, i + 1);
  EXPECT_EQ(dsu.num_components(), 1u);
  EXPECT_EQ(dsu.Find(0), dsu.Find(static_cast<uint32_t>(n - 1)));
}

}  // namespace
}  // namespace rpdbscan
