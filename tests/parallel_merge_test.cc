// The edge-parallel lock-free merge (MergeOptions::parallel_unions) must
// be observationally identical to the sequential tournament: same cluster
// ids, same predecessor lists, same spanning-forest accounting — for any
// edge order and any thread count. These tests stress exactly that, both
// at the merge layer on random graphs and end-to-end through the pipeline
// across dimensionalities.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/merge.h"
#include "core/rp_dbscan.h"
#include "parallel/thread_pool.h"
#include "synth/generators.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

// A random multi-partition cell graph shaped like Phase II's output:
// cells dealt randomly to partitions, each cell core with probability
// `core_p`, plus random directed edges — emitted by the owner of their
// `from` cell (single ownership), and only from core cells (Phase II
// draws an edge when a *core* cell reaches a neighbor; the
// #clusters == #core - #kept-full-edges accounting relies on it).
std::vector<CellSubgraph> RandomSubgraphs(size_t num_cells,
                                          size_t num_partitions,
                                          size_t num_edges, double core_p,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<CellSubgraph> graphs(num_partitions);
  std::vector<uint32_t> owner(num_cells);
  std::vector<bool> is_core(num_cells);
  for (uint32_t c = 0; c < num_cells; ++c) {
    const uint32_t p = static_cast<uint32_t>(rng.Uniform(num_partitions));
    owner[c] = p;
    is_core[c] = rng.UniformDouble(0, 1) < core_p;
    graphs[p].partition_id = p;
    graphs[p].owned.emplace_back(
        c, is_core[c] ? CellType::kCore : CellType::kNonCore);
  }
  for (size_t e = 0; e < num_edges; ++e) {
    const uint32_t from = static_cast<uint32_t>(rng.Uniform(num_cells));
    const uint32_t to = static_cast<uint32_t>(rng.Uniform(num_cells));
    if (from == to || !is_core[from]) continue;
    graphs[owner[from]].edges.push_back(
        CellEdge{from, to, EdgeType::kUndetermined});
  }
  return graphs;
}

void ShuffleEdges(std::vector<CellSubgraph>* graphs, uint64_t seed) {
  Rng rng(seed);
  for (CellSubgraph& g : *graphs) {
    for (size_t i = g.edges.size(); i > 1; --i) {
      std::swap(g.edges[i - 1], g.edges[rng.Uniform(i)]);
    }
  }
}

size_t CountCore(const std::vector<CellSubgraph>& graphs) {
  size_t core = 0;
  for (const CellSubgraph& g : graphs) {
    for (const auto& [cid, type] : g.owned) {
      core += type == CellType::kCore;
    }
  }
  return core;
}

// Everything downstream consumes: cluster table, predecessor lists,
// cluster count. (full_edges and edges_per_round are schedule-dependent
// in content/shape and are checked separately via their invariants.)
void ExpectSameObservables(const MergeResult& a, const MergeResult& b) {
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.core_cluster, b.core_cluster);
  EXPECT_EQ(a.predecessors, b.predecessors);
}

TEST(ParallelMergeTest, MatchesTournamentOnRandomGraphs) {
  ThreadPool pool(4);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    auto seq_graphs = RandomSubgraphs(400, 12, 1500, 0.6, seed);
    auto par_graphs = seq_graphs;
    MergeOptions seq_opts;
    const MergeResult seq =
        MergeSubgraphs(std::move(seq_graphs), 400, seq_opts);
    MergeOptions par_opts;
    par_opts.parallel_unions = true;
    par_opts.pool = &pool;
    const MergeResult par =
        MergeSubgraphs(std::move(par_graphs), 400, par_opts);
    ExpectSameObservables(seq, par);
    // Same initial edge count; the parallel series is the 2-entry
    // {initial, kept} collapse and still monotone for the auditor.
    ASSERT_EQ(par.edges_per_round.size(), 2u);
    EXPECT_EQ(par.edges_per_round.front(), seq.edges_per_round.front());
    EXPECT_LE(par.edges_per_round.back(), par.edges_per_round.front());
  }
}

TEST(ParallelMergeTest, SpanningForestAccountingIsScheduleIndependent) {
  // With reduction on, #kept full edges == #core - #clusters in both
  // paths (the invariant AuditMergeForest re-verifies).
  ThreadPool pool(4);
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    auto graphs = RandomSubgraphs(300, 8, 1200, 0.7, seed);
    const size_t num_core = CountCore(graphs);
    auto par_graphs = graphs;
    const MergeResult seq = MergeSubgraphs(std::move(graphs), 300, {});
    MergeOptions par_opts;
    par_opts.parallel_unions = true;
    par_opts.pool = &pool;
    const MergeResult par =
        MergeSubgraphs(std::move(par_graphs), 300, par_opts);
    EXPECT_EQ(seq.full_edges.size(), num_core - seq.num_clusters);
    EXPECT_EQ(par.full_edges.size(), num_core - par.num_clusters);
    ExpectSameObservables(seq, par);
  }
}

TEST(ParallelMergeTest, ReductionOffKeepsEveryTypedEdge) {
  ThreadPool pool(2);
  auto graphs = RandomSubgraphs(120, 6, 500, 0.8, 31);
  auto par_graphs = graphs;
  MergeOptions seq_opts;
  seq_opts.reduce_edges = false;
  const MergeResult seq = MergeSubgraphs(std::move(graphs), 120, seq_opts);
  MergeOptions par_opts;
  par_opts.reduce_edges = false;
  par_opts.parallel_unions = true;
  par_opts.pool = &pool;
  const MergeResult par =
      MergeSubgraphs(std::move(par_graphs), 120, par_opts);
  ExpectSameObservables(seq, par);
  // No reduction: every edge survives in both paths (orders differ; the
  // sets are equal because both keep exactly the typed-full edges).
  EXPECT_EQ(seq.full_edges.size(), par.full_edges.size());
  EXPECT_EQ(par.edges_per_round.back(), par.edges_per_round.front());
}

TEST(ParallelMergeTest, EdgeOrderInvariance) {
  // Shuffle the per-partition edge lists: the parallel path's outputs
  // must not move (typing is per-edge; the harvest is canonical).
  ThreadPool pool(4);
  auto base = RandomSubgraphs(250, 10, 1000, 0.65, 41);
  MergeOptions opts;
  opts.parallel_unions = true;
  opts.pool = &pool;
  auto first_graphs = base;
  const MergeResult first =
      MergeSubgraphs(std::move(first_graphs), 250, opts);
  for (uint64_t seed = 51; seed <= 54; ++seed) {
    auto graphs = base;
    ShuffleEdges(&graphs, seed);
    const MergeResult r = MergeSubgraphs(std::move(graphs), 250, opts);
    ExpectSameObservables(first, r);
    EXPECT_EQ(first.edges_per_round, r.edges_per_round);
  }
}

TEST(ParallelMergeTest, ThreadCountInvariance) {
  auto base = RandomSubgraphs(300, 10, 1400, 0.6, 61);
  MergeOptions no_pool;
  no_pool.parallel_unions = true;
  auto serial_graphs = base;
  const MergeResult serial =
      MergeSubgraphs(std::move(serial_graphs), 300, no_pool);
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    MergeOptions opts;
    opts.parallel_unions = true;
    opts.pool = &pool;
    auto graphs = base;
    const MergeResult r = MergeSubgraphs(std::move(graphs), 300, opts);
    ExpectSameObservables(serial, r);
  }
}

TEST(ParallelMergeTest, PipelineLabelsBitIdenticalAcrossDims) {
  // End-to-end: sequential tournament vs edge-parallel merge through the
  // whole pipeline, dims 2-5, two thread counts — labels bit-identical.
  for (const size_t dim : {2u, 3u, 4u, 5u}) {
    const Dataset ds = synth::Blobs(3000, 4, 1.0, 70 + dim, dim);
    for (const size_t threads : {1u, 4u}) {
      RpDbscanOptions seq;
      seq.eps = 1.5;
      seq.min_pts = 15;
      seq.num_threads = threads;
      seq.num_partitions = 8;
      seq.sequential_merge = true;
      RpDbscanOptions par = seq;
      par.sequential_merge = false;
      auto a = RunRpDbscan(ds, seq);
      auto b = RunRpDbscan(ds, par);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      EXPECT_FALSE(a->stats.parallel_merge);
      EXPECT_TRUE(b->stats.parallel_merge);
      EXPECT_EQ(a->labels, b->labels)
          << "dim=" << dim << " threads=" << threads;
      EXPECT_EQ(a->stats.num_clusters, b->stats.num_clusters);
      EXPECT_EQ(a->stats.num_noise_points, b->stats.num_noise_points);
    }
  }
}

TEST(ParallelMergeTest, PipelineFullAuditAcceptsParallelForest) {
  const Dataset ds = synth::Blobs(2500, 3, 1.0, 83, 3);
  RpDbscanOptions o;
  o.eps = 1.5;
  o.min_pts = 15;
  o.num_threads = 4;
  o.num_partitions = 8;
  o.audit_level = AuditLevel::kFull;
  auto r = RunRpDbscan(ds, o);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->stats.parallel_merge);
  EXPECT_GT(r->stats.audit_checks, 0u);
  EXPECT_EQ(r->stats.audit_violations, 0u);
}

}  // namespace
}  // namespace rpdbscan
