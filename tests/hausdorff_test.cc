// The Hausdorff metric (metrics/hausdorff.h): the early-break directed
// pass must agree with a brute-force O(|A| |B|) reference on random point
// sets, and the degenerate-input conventions are pinned here.

#include "metrics/hausdorff.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "io/dataset.h"
#include "synth/generators.h"
#include "test_seed.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The definition, with no early break: max over a of min over b.
double BruteDirected(const std::vector<float>& a, const std::vector<float>& b,
                     size_t dim) {
  const size_t na = a.size() / dim;
  const size_t nb = b.size() / dim;
  if (na == 0) return 0.0;
  if (nb == 0) return kInf;
  double max2 = 0.0;
  for (size_t i = 0; i < na; ++i) {
    double min2 = kInf;
    for (size_t j = 0; j < nb; ++j) {
      double d2 = 0.0;
      for (size_t k = 0; k < dim; ++k) {
        const double d = static_cast<double>(a[i * dim + k]) -
                         static_cast<double>(b[j * dim + k]);
        d2 += d * d;
      }
      if (d2 < min2) min2 = d2;
    }
    if (min2 > max2) max2 = min2;
  }
  return std::sqrt(max2);
}

std::vector<float> RandomPoints(Rng& rng, size_t n, size_t dim) {
  std::vector<float> pts(n * dim);
  for (float& v : pts) {
    v = static_cast<float>(rng.UniformDouble(-10.0, 10.0));
  }
  return pts;
}

TEST(HausdorffTest, MatchesBruteForceOnRandomSets) {
  const uint64_t seed = TestSeed(8100);
  SCOPED_TRACE(SeedNote(seed));
  Rng rng(seed);
  for (int round = 0; round < 20; ++round) {
    const size_t dim = 1 + static_cast<size_t>(rng.Uniform(5));
    const size_t na = 1 + static_cast<size_t>(rng.Uniform(60));
    const size_t nb = 1 + static_cast<size_t>(rng.Uniform(60));
    const std::vector<float> a = RandomPoints(rng, na, dim);
    const std::vector<float> b = RandomPoints(rng, nb, dim);
    const double want_ab = BruteDirected(a, b, dim);
    const double want_ba = BruteDirected(b, a, dim);
    EXPECT_DOUBLE_EQ(DirectedHausdorff(a.data(), na, b.data(), nb, dim),
                     want_ab)
        << "round " << round;
    EXPECT_DOUBLE_EQ(HausdorffDistance(a.data(), na, b.data(), nb, dim),
                     std::max(want_ab, want_ba))
        << "round " << round;
  }
}

TEST(HausdorffTest, DirectedIsAsymmetric) {
  // B = A plus one far outlier: A -> B is 0 (A is covered), B -> A is the
  // outlier's distance.
  const std::vector<float> a = {0, 0, 1, 0};
  const std::vector<float> b = {0, 0, 1, 0, 11, 0};
  EXPECT_DOUBLE_EQ(DirectedHausdorff(a.data(), 2, b.data(), 3, 2), 0.0);
  EXPECT_DOUBLE_EQ(DirectedHausdorff(b.data(), 3, a.data(), 2, 2), 10.0);
  EXPECT_DOUBLE_EQ(HausdorffDistance(a.data(), 2, b.data(), 3, 2), 10.0);
}

TEST(HausdorffTest, EmptySetConventions) {
  const std::vector<float> a = {1, 2};
  EXPECT_DOUBLE_EQ(DirectedHausdorff(nullptr, 0, nullptr, 0, 2), 0.0);
  EXPECT_DOUBLE_EQ(HausdorffDistance(nullptr, 0, nullptr, 0, 2), 0.0);
  EXPECT_EQ(DirectedHausdorff(a.data(), 1, nullptr, 0, 2), kInf);
  EXPECT_DOUBLE_EQ(DirectedHausdorff(nullptr, 0, a.data(), 1, 2), 0.0);
  EXPECT_EQ(HausdorffDistance(a.data(), 1, nullptr, 0, 2), kInf);
}

TEST(ClusterHausdorffTest, IdenticalLabelingsAreAtZero) {
  const uint64_t seed = TestSeed(8200);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(500, 3, 1.0, seed);
  Labels a(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    a[i] = static_cast<int64_t>(i % 3);
  }
  auto r = ClusterHausdorff(ds, a, a);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(r->max_distance, 0.0);
  EXPECT_DOUBLE_EQ(r->mean_distance, 0.0);
  EXPECT_EQ(r->clusters_a, 3u);
  EXPECT_EQ(r->clusters_b, 3u);
}

TEST(ClusterHausdorffTest, InvariantToLabelPermutation) {
  const uint64_t seed = TestSeed(8300);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(400, 4, 1.0, seed);
  Labels a(ds.size());
  Labels b(ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    a[i] = static_cast<int64_t>(i % 4);
    b[i] = static_cast<int64_t>((i + 2) % 4) + 10;  // renamed clusters
  }
  auto r = ClusterHausdorff(ds, a, b);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(r->max_distance, 0.0);
}

TEST(ClusterHausdorffTest, NoiseFormsNoCluster) {
  Dataset ds(2);
  for (int i = 0; i < 6; ++i) {
    ds.Append({static_cast<float>(i), 0.0f});
  }
  // a clusters the first four points; b additionally clusters the two
  // points a calls noise, one unit away from a's cluster points.
  const Labels a = {0, 0, 1, 1, kNoise, kNoise};
  const Labels b = {0, 0, 1, 1, 1, kNoise};
  auto r = ClusterHausdorff(ds, a, b);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->clusters_a, 2u);
  EXPECT_EQ(r->clusters_b, 2u);
  // a's cluster {2,3} best-matches b's {2,3,4}: covered, so directed
  // a->b is 0, but b's extra point 4 is 1 unit from a's cluster.
  EXPECT_DOUBLE_EQ(r->max_distance, 1.0);
}

TEST(ClusterHausdorffTest, DegenerateConventions) {
  Dataset ds(2);
  ds.Append({0, 0});
  ds.Append({1, 1});
  const Labels none = {kNoise, kNoise};
  const Labels one = {0, 0};

  auto both_empty = ClusterHausdorff(ds, none, none);
  ASSERT_TRUE(both_empty.ok());
  EXPECT_DOUBLE_EQ(both_empty->max_distance, 0.0);
  EXPECT_EQ(both_empty->clusters_a, 0u);

  auto a_only = ClusterHausdorff(ds, one, none);
  ASSERT_TRUE(a_only.ok());
  EXPECT_EQ(a_only->max_distance, kInf);

  auto b_only = ClusterHausdorff(ds, none, one);
  ASSERT_TRUE(b_only.ok());
  EXPECT_EQ(b_only->max_distance, kInf);

  const Labels short_labels = {0};
  EXPECT_FALSE(ClusterHausdorff(ds, short_labels, one).ok());
}

}  // namespace
}  // namespace rpdbscan
