#ifndef RPDBSCAN_TESTS_TEST_SEED_H_
#define RPDBSCAN_TESTS_TEST_SEED_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace rpdbscan {

/// Seed for randomized tests: the suite's `fallback` unless the
/// RPDBSCAN_TEST_SEED environment variable overrides it — the replay knob
/// for a failure whose message printed its effective seed.
inline uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("RPDBSCAN_TEST_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return static_cast<uint64_t>(v);
}

/// One-line seed note for SCOPED_TRACE so every assertion failure names
/// the seed to replay with.
inline std::string SeedNote(uint64_t seed) {
  return "effective seed " + std::to_string(seed) +
         " (replay: RPDBSCAN_TEST_SEED=" + std::to_string(seed) + ")";
}

}  // namespace rpdbscan

#endif  // RPDBSCAN_TESTS_TEST_SEED_H_
