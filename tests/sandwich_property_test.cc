// Property test for Theorem 5.4 (the sandwich theorem): the clustering C
// produced by (eps,rho)-region queries satisfies C1 <= C <= C2 where C1 is
// exact DBSCAN at (1-rho/2)eps and C2 exact DBSCAN at (1+rho/2)eps.
//
// Operationally, over sampled point pairs:
//  (a) two points that are core and co-clustered at (1-rho/2)eps must be
//      co-clustered by RP-DBSCAN, and
//  (b) two points that are core and co-clustered by RP-DBSCAN must be
//      co-clustered at (1+rho/2)eps.
// Border points may belong to several clusters (the classic DBSCAN
// ambiguity), so a tiny violation rate is tolerated.

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/exact_dbscan.h"
#include "core/rp_dbscan.h"
#include "synth/generators.h"
#include "util/random.h"

#include "test_seed.h"

namespace rpdbscan {
namespace {

struct SandwichParam {
  double rho;
  uint64_t seed;
};

class SandwichSweep
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(SandwichSweep, ClusteringIsSandwiched) {
  const auto [rho, grid_seed] = GetParam();
  const uint64_t seed = TestSeed(grid_seed);
  SCOPED_TRACE(SeedNote(seed));
  const double eps = 1.0;
  const size_t min_pts = 15;
  const Dataset ds = synth::Blobs(3000, 5, 1.2, seed);

  RpDbscanOptions o;
  o.eps = eps;
  o.min_pts = min_pts;
  o.rho = rho;
  o.num_threads = 2;
  o.num_partitions = 8;
  // Full invariant auditing rides along on every sampled configuration.
  o.audit_level = AuditLevel::kFull;
  auto rp = RunRpDbscan(ds, o);
  ASSERT_TRUE(rp.ok()) << rp.status();

  auto lower = RunExactDbscan(ds, {(1.0 - rho / 2) * eps, min_pts});
  auto upper = RunExactDbscan(ds, {(1.0 + rho / 2) * eps, min_pts});
  ASSERT_TRUE(lower.ok());
  ASSERT_TRUE(upper.ok());

  Rng rng(seed * 31 + 7);
  size_t lower_checked = 0;
  size_t lower_violations = 0;
  size_t upper_checked = 0;
  size_t upper_violations = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    const size_t a = static_cast<size_t>(rng.Uniform(ds.size()));
    const size_t b = static_cast<size_t>(rng.Uniform(ds.size()));
    if (a == b) continue;
    // (a) C1 <= C.
    if (lower->point_is_core[a] && lower->point_is_core[b] &&
        lower->labels[a] == lower->labels[b]) {
      ++lower_checked;
      if (rp->labels[a] != rp->labels[b] || rp->labels[a] == kNoise) {
        ++lower_violations;
      }
    }
    // (b) C <= C2. RP core points are exactly the non-noise points of
    // core cells; use co-clustered non-noise pairs that are core in the
    // upper clustering's sense via the lower bound: any RP-core point is
    // (1+rho/2)eps-core, so restrict to pairs core at the *lower* radius
    // (a fortiori RP-core) to dodge border ambiguity.
    if (lower->point_is_core[a] && lower->point_is_core[b] &&
        rp->labels[a] != kNoise && rp->labels[a] == rp->labels[b]) {
      ++upper_checked;
      if (upper->labels[a] != upper->labels[b]) ++upper_violations;
    }
  }
  ASSERT_GT(lower_checked, 100u);
  ASSERT_GT(upper_checked, 100u);
  EXPECT_LE(static_cast<double>(lower_violations),
            0.01 * static_cast<double>(lower_checked))
      << lower_violations << "/" << lower_checked;
  EXPECT_LE(static_cast<double>(upper_violations),
            0.01 * static_cast<double>(upper_checked))
      << upper_violations << "/" << upper_checked;
}

INSTANTIATE_TEST_SUITE_P(
    RhoAndSeedGrid, SandwichSweep,
    ::testing::Combine(::testing::Values(0.01, 0.05, 0.10, 0.20),
                       ::testing::Values(11u, 22u, 33u)),
    [](const ::testing::TestParamInfo<std::tuple<double, uint64_t>>& info) {
      const double rho = std::get<0>(info.param);
      const uint64_t seed = std::get<1>(info.param);
      std::string name = "rho";
      name += rho == 0.01 ? "01" : (rho == 0.05 ? "05"
                                   : (rho == 0.10 ? "10" : "20"));
      name += "_seed" + std::to_string(seed);
      return name;
    });

}  // namespace
}  // namespace rpdbscan
