#include "baselines/region_split.h"

#include <gtest/gtest.h>

#include "baselines/exact_dbscan.h"
#include "metrics/cluster_stats.h"
#include "metrics/rand_index.h"
#include "synth/generators.h"

namespace rpdbscan {
namespace {

RegionSplitOptions Opts(double eps, size_t min_pts,
                        RegionPartitionStrategy strategy,
                        size_t splits = 8) {
  RegionSplitOptions o;
  o.params = {eps, min_pts};
  o.strategy = strategy;
  o.num_splits = splits;
  o.num_threads = 2;
  return o;
}

TEST(RegionSplitTest, StrategyNames) {
  EXPECT_STREQ(
      RegionPartitionStrategyName(RegionPartitionStrategy::kEvenSplit),
      "even-split");
  EXPECT_STREQ(RegionPartitionStrategyName(
                   RegionPartitionStrategy::kReducedBoundary),
               "reduced-boundary");
  EXPECT_STREQ(
      RegionPartitionStrategyName(RegionPartitionStrategy::kCostBased),
      "cost-based");
}

TEST(RegionSplitTest, RejectsBadInputs) {
  const Dataset empty(2);
  EXPECT_FALSE(RunRegionSplitDbscan(
                   empty, Opts(1.0, 5, RegionPartitionStrategy::kEvenSplit))
                   .ok());
  const Dataset ds = synth::Blobs(100, 2, 1.0, 1);
  EXPECT_FALSE(RunRegionSplitDbscan(
                   ds, Opts(0.0, 5, RegionPartitionStrategy::kEvenSplit))
                   .ok());
  EXPECT_FALSE(RunRegionSplitDbscan(
                   ds, Opts(1.0, 0, RegionPartitionStrategy::kEvenSplit))
                   .ok());
  auto o = Opts(1.0, 5, RegionPartitionStrategy::kEvenSplit);
  o.num_splits = 0;
  EXPECT_FALSE(RunRegionSplitDbscan(ds, o).ok());
}

class RegionSplitStrategyTest
    : public ::testing::TestWithParam<RegionPartitionStrategy> {};

TEST_P(RegionSplitStrategyTest, MatchesExactDbscan) {
  const Dataset ds = synth::Blobs(4000, 5, 1.0, 51);
  auto rs = RunRegionSplitDbscan(ds, Opts(1.0, 15, GetParam()));
  ASSERT_TRUE(rs.ok()) << rs.status();
  auto exact = RunExactDbscan(ds, {1.0, 15});
  ASSERT_TRUE(exact.ok());
  auto ri = RandIndex(rs->labels, exact->labels);
  ASSERT_TRUE(ri.ok());
  EXPECT_GE(*ri, 0.999) << RegionPartitionStrategyName(GetParam());
}

TEST_P(RegionSplitStrategyTest, DuplicationAlwaysAtLeastDataSize) {
  const Dataset ds = synth::Blobs(2000, 4, 1.5, 52);
  auto rs = RunRegionSplitDbscan(ds, Opts(1.0, 10, GetParam(), 4));
  ASSERT_TRUE(rs.ok());
  EXPECT_GE(rs->points_processed, ds.size());
  EXPECT_EQ(rs->task_seconds.size(), 4u);
}

TEST_P(RegionSplitStrategyTest, ClusterSpanningCutIsMerged) {
  // One elongated dense cluster crossing the whole space: any cut slices
  // it, so the merge phase must reunite the halves.
  Dataset ds(2);
  for (int i = 0; i < 4000; ++i) {
    ds.Append({static_cast<float>(i) * 0.02f,
               static_cast<float>((i * 13) % 10) * 0.05f});
  }
  auto rs = RunRegionSplitDbscan(ds, Opts(0.5, 10, GetParam(), 8));
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(Summarize(rs->labels).num_clusters, 1u)
      << RegionPartitionStrategyName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, RegionSplitStrategyTest,
    ::testing::Values(RegionPartitionStrategy::kEvenSplit,
                      RegionPartitionStrategy::kReducedBoundary,
                      RegionPartitionStrategy::kCostBased),
    [](const ::testing::TestParamInfo<RegionPartitionStrategy>& info) {
      switch (info.param) {
        case RegionPartitionStrategy::kEvenSplit:
          return "EvenSplit";
        case RegionPartitionStrategy::kReducedBoundary:
          return "ReducedBoundary";
        case RegionPartitionStrategy::kCostBased:
          return "CostBased";
      }
      return "Unknown";
    });

TEST(RegionSplitTest, ExactLocalClusteringAlsoCorrect) {
  // SPARK-DBSCAN configuration: cost-based split without rho-approx.
  const Dataset ds = synth::Blobs(1500, 3, 1.0, 53);
  auto o = Opts(1.0, 10, RegionPartitionStrategy::kCostBased, 4);
  o.rho_approximate = false;
  auto rs = RunRegionSplitDbscan(ds, o);
  ASSERT_TRUE(rs.ok());
  auto exact = RunExactDbscan(ds, {1.0, 10});
  ASSERT_TRUE(exact.ok());
  auto ri = RandIndex(rs->labels, exact->labels);
  ASSERT_TRUE(ri.ok());
  EXPECT_GE(*ri, 0.9999);
}

TEST(RegionSplitTest, SingleSplitDegeneratesToLocalRun) {
  const Dataset ds = synth::Blobs(1000, 3, 1.0, 54);
  auto rs = RunRegionSplitDbscan(
      ds, Opts(1.0, 10, RegionPartitionStrategy::kEvenSplit, 1));
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->points_processed, ds.size());
  EXPECT_EQ(Summarize(rs->labels).num_clusters, 3u);
}

TEST(RegionSplitTest, SkewedDataHasWorseImbalanceThanUniform) {
  // Region split struggles on skew (Fig. 13a): compare max/min task size
  // proxy through points_processed distribution is noisy on small data,
  // so just assert the run completes and reports sane accounting.
  const Dataset ds = synth::GeoLifeLike(8000, 55);
  auto rs = RunRegionSplitDbscan(
      ds, Opts(2.0, 10, RegionPartitionStrategy::kEvenSplit, 8));
  ASSERT_TRUE(rs.ok());
  EXPECT_GT(rs->points_processed, ds.size());
  EXPECT_GT(rs->total_seconds, 0.0);
  EXPECT_GE(rs->split_seconds, 0.0);
  EXPECT_GE(rs->local_seconds, 0.0);
  EXPECT_GE(rs->merge_seconds, 0.0);
}

}  // namespace
}  // namespace rpdbscan
