#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/cell_set.h"
#include "core/grid.h"
#include "io/binary.h"
#include "io/mmap_dataset.h"
#include "io/point_source.h"
#include "parallel/thread_pool.h"
#include "synth/generators.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

GridGeometry MakeGeom(size_t dim, double eps, double rho = 0.1) {
  auto g = GridGeometry::Create(dim, eps, rho);
  EXPECT_TRUE(g.ok());
  return *g;
}

/// The bit-identity contract of CellSet::BuildExternal: every structure a
/// downstream phase can observe must match the in-RAM build exactly.
void ExpectIdenticalCellSets(const CellSet& a, const CellSet& b) {
  ASSERT_EQ(a.num_cells(), b.num_cells());
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  EXPECT_EQ(a.cell_point_offsets(), b.cell_point_offsets());
  EXPECT_EQ(a.point_ids(), b.point_ids());
  for (uint32_t c = 0; c < a.num_cells(); ++c) {
    ASSERT_EQ(a.cell(c).coord, b.cell(c).coord) << "cell " << c;
    ASSERT_EQ(a.cell(c).owner_partition, b.cell(c).owner_partition)
        << "cell " << c;
  }
  for (uint32_t p = 0; p < a.num_partitions(); ++p) {
    EXPECT_EQ(a.partition(p), b.partition(p)) << "partition " << p;
    EXPECT_EQ(a.PartitionPoints(p), b.PartitionPoints(p));
  }
}

class ExternalPhase1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ext_phase1_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    const std::string mkdir = "mkdir -p " + dir_;
    ASSERT_EQ(std::system(mkdir.c_str()), 0);
  }
  void TearDown() override {
    const std::string rm = "rm -rf " + dir_;
    (void)std::system(rm.c_str());
  }

  std::string dir_;
};

TEST_F(ExternalPhase1Test, ByteIdenticalToInRamBuild) {
  const Dataset ds = synth::GeoLifeLike(30000, 91);
  const GridGeometry geom = MakeGeom(ds.dim(), 2.0);
  auto in_ram = CellSet::Build(ds, geom, 16, 7);
  ASSERT_TRUE(in_ram.ok());

  const DatasetSource source(ds);
  ExternalBuildOptions opts;
  opts.memory_budget_bytes = 256u << 10;  // forces several chunks / runs
  opts.spill_dir = dir_;
  ExternalBuildStats stats;
  auto ext = CellSet::BuildExternal(source, geom, 16, 7, opts, nullptr,
                                    &stats);
  ASSERT_TRUE(ext.ok()) << ext.status();
  EXPECT_TRUE(stats.external_path_used);
  EXPECT_GT(stats.chunks, 1u);
  EXPECT_GT(stats.runs, 1u);
  EXPECT_GT(stats.spill_bytes, 0u);
  ExpectIdenticalCellSets(*ext, *in_ram);
  EXPECT_TRUE(ext->breakdown().sorted_path_used);
}

TEST_F(ExternalPhase1Test, ByteIdenticalFromMmapSourceWithPool) {
  const Dataset ds = synth::GeoLifeLike(25000, 92);
  const std::string path = dir_ + "/pts.rpds";
  ASSERT_TRUE(WriteBinary(path, ds).ok());
  auto m = MmapDataset::Open(path);
  ASSERT_TRUE(m.ok());
  const GridGeometry geom = MakeGeom(ds.dim(), 1.5);
  ThreadPool pool(4);
  auto in_ram = CellSet::Build(ds, geom, 8, 13, &pool);
  ASSERT_TRUE(in_ram.ok());

  ExternalBuildOptions opts;
  opts.memory_budget_bytes = 200u << 10;
  opts.spill_dir = dir_;
  ExternalBuildStats stats;
  auto ext = CellSet::BuildExternal(*m, geom, 8, 13, opts, &pool, &stats);
  ASSERT_TRUE(ext.ok()) << ext.status();
  EXPECT_TRUE(stats.external_path_used);
  EXPECT_GT(stats.runs, 1u);
  ExpectIdenticalCellSets(*ext, *in_ram);
}

TEST_F(ExternalPhase1Test, PeakAccountedBytesWithinBudget) {
  const Dataset ds = synth::GeoLifeLike(20000, 93);
  const DatasetSource source(ds);
  const GridGeometry geom = MakeGeom(ds.dim(), 2.0);
  ExternalBuildOptions opts;
  opts.memory_budget_bytes = 256u << 10;
  opts.spill_dir = dir_;
  ExternalBuildStats stats;
  auto ext =
      CellSet::BuildExternal(source, geom, 8, 7, opts, nullptr, &stats);
  ASSERT_TRUE(ext.ok()) << ext.status();
  EXPECT_TRUE(stats.external_path_used);
  EXPECT_GT(stats.peak_accounted_bytes, 0u);
  EXPECT_LE(stats.peak_accounted_bytes, opts.memory_budget_bytes);
}

TEST_F(ExternalPhase1Test, LargeBudgetSingleChunkStillIdentical) {
  const Dataset ds = synth::Blobs(5000, 6, 1.5, 94, /*dim=*/4);
  const DatasetSource source(ds);
  const GridGeometry geom = MakeGeom(ds.dim(), 1.0);
  auto in_ram = CellSet::Build(ds, geom, 4, 3);
  ASSERT_TRUE(in_ram.ok());
  ExternalBuildOptions opts;
  opts.memory_budget_bytes = 64u << 20;  // everything fits one chunk
  opts.spill_dir = dir_;
  ExternalBuildStats stats;
  auto ext =
      CellSet::BuildExternal(source, geom, 4, 3, opts, nullptr, &stats);
  ASSERT_TRUE(ext.ok()) << ext.status();
  EXPECT_EQ(stats.chunks, 1u);
  EXPECT_EQ(stats.runs, 1u);
  ExpectIdenticalCellSets(*ext, *in_ram);
}

TEST_F(ExternalPhase1Test, AbsurdlySmallBudgetStillCorrect) {
  // A budget far below any floor: the build clamps chunk sizes (also
  // bounding the number of spill files) and must still be exact.
  const Dataset ds = synth::GeoLifeLike(6000, 95);
  const DatasetSource source(ds);
  const GridGeometry geom = MakeGeom(ds.dim(), 2.0);
  auto in_ram = CellSet::Build(ds, geom, 8, 7);
  ASSERT_TRUE(in_ram.ok());
  ExternalBuildOptions opts;
  opts.memory_budget_bytes = 1;
  opts.spill_dir = dir_;
  ExternalBuildStats stats;
  auto ext =
      CellSet::BuildExternal(source, geom, 8, 7, opts, nullptr, &stats);
  ASSERT_TRUE(ext.ok()) << ext.status();
  EXPECT_TRUE(stats.external_path_used);
  EXPECT_LE(stats.runs, 512u);  // fd-bound clamp
  ExpectIdenticalCellSets(*ext, *in_ram);
}

TEST_F(ExternalPhase1Test, OversizedKeyFallsBackToInRam) {
  // 16 dimensions spanning a huge lattice: the cell key cannot fit 128
  // bits, so the external build must transparently fall back to the
  // in-RAM path (which itself falls back to the hash engine) and still
  // produce the identical structure.
  Dataset ds(16);
  Rng rng(96);
  for (size_t i = 0; i < 500; ++i) {
    float p[16];
    for (float& v : p) {
      v = static_cast<float>(rng.Uniform(2000000)) / 7.0f;
    }
    ds.Append(p);
  }
  const GridGeometry geom = MakeGeom(16, 1.0);
  auto in_ram = CellSet::Build(ds, geom, 4, 7);
  ASSERT_TRUE(in_ram.ok());
  const DatasetSource source(ds);
  ExternalBuildOptions opts;
  opts.spill_dir = dir_;
  ExternalBuildStats stats;
  auto ext =
      CellSet::BuildExternal(source, geom, 4, 7, opts, nullptr, &stats);
  ASSERT_TRUE(ext.ok()) << ext.status();
  EXPECT_FALSE(stats.external_path_used);
  EXPECT_EQ(stats.spill_bytes, 0u);
  ExpectIdenticalCellSets(*ext, *in_ram);
}

TEST_F(ExternalPhase1Test, RejectsBadArguments) {
  const Dataset empty(3);
  const DatasetSource source(empty);
  const GridGeometry geom = MakeGeom(3, 1.0);
  ExternalBuildOptions opts;
  opts.spill_dir = dir_;
  EXPECT_FALSE(CellSet::BuildExternal(source, geom, 4, 7, opts).ok());

  const Dataset ds = synth::Blobs(100, 2, 1.0, 97);
  const DatasetSource ok_source(ds);
  EXPECT_FALSE(
      CellSet::BuildExternal(ok_source, MakeGeom(3, 1.0), 4, 7, opts).ok())
      << "dim mismatch must be rejected";
  EXPECT_FALSE(
      CellSet::BuildExternal(ok_source, MakeGeom(2, 1.0), 0, 7, opts).ok())
      << "zero partitions must be rejected";
}

TEST_F(ExternalPhase1Test, UnwritableSpillDirFails) {
  // Point spill_dir at a regular file: the per-build subdirectory cannot
  // be created beneath it (a plain nonexistent path would just be
  // created, especially when tests run as root).
  const std::string blocker = dir_ + "/blocker";
  { std::FILE* f = std::fopen(blocker.c_str(), "w"); ASSERT_NE(f, nullptr);
    std::fclose(f); }
  const Dataset ds = synth::Blobs(1000, 2, 1.0, 98);
  const DatasetSource source(ds);
  ExternalBuildOptions opts;
  opts.memory_budget_bytes = 4096;  // force spilling
  opts.spill_dir = blocker;
  auto ext =
      CellSet::BuildExternal(source, MakeGeom(2, 1.0), 4, 7, opts);
  EXPECT_FALSE(ext.ok());
}

}  // namespace
}  // namespace rpdbscan
