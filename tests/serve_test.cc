#include "serve/label_server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/rp_dbscan.h"
#include "serve/snapshot.h"
#include "synth/generators.h"
#include "test_seed.h"

namespace rpdbscan {
namespace {

RpDbscanOptions Opts(double eps, size_t min_pts) {
  RpDbscanOptions o;
  o.eps = eps;
  o.min_pts = min_pts;
  o.num_threads = 2;
  o.num_partitions = 4;
  o.capture_model = true;
  return o;
}

std::shared_ptr<const ClusterModelSnapshot> Load(
    const std::vector<uint8_t>& bytes, bool stencil) {
  SnapshotOptions sopts;
  sopts.dict_opts.build_stencil = stencil;
  auto loaded = ClusterModelSnapshot::Deserialize(bytes, sopts);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->dictionary().has_stencil(), stencil);
  return std::make_shared<const ClusterModelSnapshot>(std::move(*loaded));
}

/// The round-trip contract of the serving layer: freezing a run and
/// serving every training point back reproduces RunRpDbscan's labels
/// bit-identically, with kExact certainty and the training core verdict,
/// on both candidate engines.
void ExpectTrainingReplay(const Dataset& ds, const RpDbscanOptions& opts) {
  auto run = RunRpDbscan(ds, opts);
  ASSERT_TRUE(run.ok()) << run.status();
  const Labels labels = run->labels;
  const std::vector<uint8_t> point_is_core = run->model->point_is_core;
  auto snap = ClusterModelSnapshot::FromModel(std::move(*run->model));
  ASSERT_TRUE(snap.ok()) << snap.status();
  const std::vector<uint8_t> bytes = snap->Serialize();

  for (const bool stencil : {true, false}) {
    SCOPED_TRACE(stencil ? "stencil engine" : "tree fallback engine");
    const LabelServer server(Load(bytes, stencil));
    ServeStats stats;
    for (size_t i = 0; i < ds.size(); ++i) {
      const ServeResult r = server.Classify(ds.point(i), &stats);
      ASSERT_EQ(r.cluster, labels[i]) << "point " << i;
      ASSERT_EQ(r.certainty, Certainty::kExact) << "point " << i;
      // Density is the run's own core criterion, so the core verdict
      // replays Phase II's per-point flag exactly.
      ASSERT_EQ(r.kind == PointKind::kCore, point_is_core[i] != 0)
          << "point " << i << " density " << r.density;
      if (r.kind == PointKind::kNoise) {
        ASSERT_EQ(labels[i], kNoise) << "point " << i;
      }
    }
    EXPECT_EQ(stats.queries, ds.size());
    EXPECT_EQ(stats.exact, ds.size());
    EXPECT_EQ(stats.cell_hits, ds.size());
    if (stencil) {
      EXPECT_GT(stats.stencil_probes, 0u);
      EXPECT_GT(stats.stencil_hits, 0u);
    } else {
      EXPECT_EQ(stats.stencil_probes, 0u);
    }
  }
}

TEST(ServeTest, TrainingPointsReplayAcrossDims) {
  uint64_t seed = TestSeed(6100);
  SCOPED_TRACE(SeedNote(seed));
  for (size_t dim = 2; dim <= 5; ++dim) {
    SCOPED_TRACE("dim=" + std::to_string(dim));
    const Dataset ds = synth::Blobs(1500, 4, 2.0, ++seed, dim);
    ExpectTrainingReplay(ds, Opts(2.5, 20));
  }
}

TEST(ServeTest, TrainingPointsReplayOnSkewedData) {
  const uint64_t seed = TestSeed(6200);
  SCOPED_TRACE(SeedNote(seed));
  ExpectTrainingReplay(synth::GeoLifeLike(3000, seed), Opts(2.0, 20));
}

TEST(ServeTest, TrainingPointsReplayNearMinPtsBoundary) {
  // min_pts near typical cell densities maximizes border/noise points —
  // the cases the predecessor replay exists for.
  const uint64_t seed = TestSeed(6300);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(900, 6, 1.2, seed, 3);
  ExpectTrainingReplay(ds, Opts(1.5, 35));
}

TEST(ServeTest, OutOfSampleQueriesResolveSanely) {
  const uint64_t seed = TestSeed(6400);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(2000, 4, 2.0, seed, 2);
  auto run = RunRpDbscan(ds, Opts(2.5, 20));
  ASSERT_TRUE(run.ok()) << run.status();
  const size_t num_clusters = run->stats.num_clusters;
  auto snap = ClusterModelSnapshot::FromModel(std::move(*run->model));
  ASSERT_TRUE(snap.ok()) << snap.status();
  const LabelServer server(
      std::make_shared<const ClusterModelSnapshot>(std::move(*snap)));

  size_t far_noise = 0;
  for (size_t i = 0; i < ds.size(); i += 7) {
    // Slightly jittered copies: still near the data, any verdict valid.
    float q[2] = {ds.point(i)[0] + 0.01f, ds.point(i)[1] - 0.02f};
    const ServeResult near = server.Classify(q);
    if (near.cluster != kNoise) {
      ASSERT_LT(near.cluster, static_cast<int64_t>(num_clusters));
    }
    // Far translation: provably outside every cell — noise, approximate.
    float far[2] = {ds.point(i)[0] + 1e6f, ds.point(i)[1] + 1e6f};
    const ServeResult r = server.Classify(far);
    EXPECT_EQ(r.cluster, kNoise);
    EXPECT_EQ(r.kind, PointKind::kNoise);
    EXPECT_EQ(r.density, 0u);
    ++far_noise;
  }
  EXPECT_GT(far_noise, 0u);
}

TEST(ServeTest, ExactCertaintyImpliesTrainingLabelEvenWithoutRefs) {
  // Without border references the non-core-cell replay is unavailable:
  // those queries degrade to kApprox, but everything still served kExact
  // must carry its training label.
  const uint64_t seed = TestSeed(6500);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(1200, 5, 1.2, seed, 3);
  auto run = RunRpDbscan(ds, Opts(1.5, 30));
  ASSERT_TRUE(run.ok()) << run.status();
  const Labels labels = run->labels;
  SnapshotOptions sopts;
  sopts.include_border_refs = false;
  auto snap = ClusterModelSnapshot::FromModel(std::move(*run->model), sopts);
  ASSERT_TRUE(snap.ok()) << snap.status();
  const LabelServer server(
      std::make_shared<const ClusterModelSnapshot>(std::move(*snap)));

  size_t approx = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    const ServeResult r = server.Classify(ds.point(i));
    if (r.certainty == Certainty::kExact) {
      ASSERT_EQ(r.cluster, labels[i]) << "point " << i;
    } else {
      ++approx;
      // Approximate answers still honor the sandwich: a labeled cell
      // within eps exists, or the query is noise.
      if (r.cluster == kNoise) {
        EXPECT_EQ(labels[i], kNoise) << "point " << i;
      }
    }
  }
  // Core-cell points (the overwhelming majority here) stay exact.
  EXPECT_LT(approx, ds.size() / 2);
}

TEST(ServeTest, BatchRejectsDimensionMismatch) {
  const Dataset ds = synth::Blobs(600, 2, 1.0, 41);
  auto run = RunRpDbscan(ds, Opts(1.0, 10));
  ASSERT_TRUE(run.ok()) << run.status();
  auto snap = ClusterModelSnapshot::FromModel(std::move(*run->model));
  ASSERT_TRUE(snap.ok()) << snap.status();
  const LabelServer server(
      std::make_shared<const ClusterModelSnapshot>(std::move(*snap)));
  ThreadPool pool(2);
  std::vector<ServeResult> results;
  const Dataset wrong = synth::Blobs(10, 1, 1.0, 42, /*dim=*/3);
  const Status s = server.ClassifyBatch(wrong, pool, &results);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rpdbscan
