#include "synth/generators.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>

namespace rpdbscan {
namespace synth {
namespace {

TEST(GaussianMixtureTest, ProducesRequestedShape) {
  GaussianMixtureOptions opts;
  opts.num_points = 5000;
  opts.dim = 3;
  opts.num_components = 10;
  opts.skewness_alpha = 1.0;
  const Dataset ds = GaussianMixture(opts);
  EXPECT_EQ(ds.size(), 5000u);
  EXPECT_EQ(ds.dim(), 3u);
}

TEST(GaussianMixtureTest, PointsStayInBounds) {
  GaussianMixtureOptions opts;
  opts.num_points = 2000;
  opts.dim = 2;
  opts.skewness_alpha = 0.125;  // wide spread, exercises clamping
  const Dataset ds = GaussianMixture(opts);
  for (size_t i = 0; i < ds.size(); ++i) {
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_GE(ds.point(i)[d], 0.0f);
      EXPECT_LE(ds.point(i)[d], 100.0f);
    }
  }
}

TEST(GaussianMixtureTest, DeterministicForSeed) {
  GaussianMixtureOptions opts;
  opts.num_points = 100;
  opts.seed = 77;
  const Dataset a = GaussianMixture(opts);
  const Dataset b = GaussianMixture(opts);
  EXPECT_EQ(a.flat(), b.flat());
}

TEST(GaussianMixtureTest, HigherAlphaConcentrates) {
  // Measure mean nearest-center distance proxy: variance of coordinates
  // must shrink when alpha grows (Appendix B.1 / Fig. 18).
  auto spread = [](double alpha) {
    GaussianMixtureOptions opts;
    opts.num_points = 20000;
    opts.dim = 2;
    opts.num_components = 1;
    opts.skewness_alpha = alpha;
    opts.seed = 5;
    const Dataset ds = GaussianMixture(opts);
    double mean = 0;
    for (size_t i = 0; i < ds.size(); ++i) mean += ds.point(i)[0];
    mean /= static_cast<double>(ds.size());
    double var = 0;
    for (size_t i = 0; i < ds.size(); ++i) {
      const double d = ds.point(i)[0] - mean;
      var += d * d;
    }
    return var / static_cast<double>(ds.size());
  };
  EXPECT_GT(spread(0.125), spread(8.0) * 10);
}

TEST(GaussianMixtureTest, WeightsShiftMass) {
  GaussianMixtureOptions opts;
  opts.num_points = 10000;
  opts.dim = 1;
  opts.num_components = 2;
  opts.weights = {0.9, 0.1};
  opts.skewness_alpha = 100.0;  // tight blobs
  opts.seed = 3;
  const Dataset ds = GaussianMixture(opts);
  EXPECT_EQ(ds.size(), 10000u);
}

TEST(MoonsTest, TwoScaleStructure) {
  const Dataset ds = Moons(2000, 0.05, 1);
  EXPECT_EQ(ds.size(), 2000u);
  EXPECT_EQ(ds.dim(), 2u);
  // All points in the (generous) bounding box of the two moons.
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_GT(ds.point(i)[0], -2.0f);
    EXPECT_LT(ds.point(i)[0], 3.0f);
    EXPECT_GT(ds.point(i)[1], -2.0f);
    EXPECT_LT(ds.point(i)[1], 2.5f);
  }
}

TEST(BlobsTest, RespectsDimAndCount) {
  const Dataset ds = Blobs(3000, 5, 1.0, 2, /*dim=*/4);
  EXPECT_EQ(ds.size(), 3000u);
  EXPECT_EQ(ds.dim(), 4u);
}

TEST(ChameleonLikeTest, HasNoisePortion) {
  const Dataset ds = ChameleonLike(10000, 4);
  EXPECT_EQ(ds.size(), 10000u);
  EXPECT_EQ(ds.dim(), 2u);
}

TEST(DatasetAnaloguesTest, ShapesMatchTable3) {
  EXPECT_EQ(GeoLifeLike(1000, 1).dim(), 3u);   // GeoLife is 3-d
  EXPECT_EQ(CosmoLike(1000, 1).dim(), 3u);     // Cosmo50 is 3-d
  EXPECT_EQ(OsmLike(1000, 1).dim(), 2u);       // OpenStreetMap is 2-d
  EXPECT_EQ(TeraLike(1000, 1).dim(), 13u);     // TeraClickLog is 13-d
}

TEST(GeoLifeLikeTest, IsHeavilySkewed) {
  // A majority of the mass must sit in a tiny region (the "Beijing"
  // component) — the property the paper uses GeoLife for.
  const Dataset ds = GeoLifeLike(20000, 9);
  // Find the densest unit lattice cell, then count the mass within
  // distance 5 of its center.
  std::map<std::array<int, 3>, size_t> buckets;
  for (size_t i = 0; i < ds.size(); ++i) {
    buckets[{static_cast<int>(ds.point(i)[0]),
             static_cast<int>(ds.point(i)[1]),
             static_cast<int>(ds.point(i)[2])}]++;
  }
  std::array<int, 3> mode{};
  size_t best = 0;
  for (const auto& kv : buckets) {
    if (kv.second > best) {
      best = kv.second;
      mode = kv.first;
    }
  }
  const float c[3] = {mode[0] + 0.5f, mode[1] + 0.5f, mode[2] + 0.5f};
  size_t dense = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (DistanceSquared(c, ds.point(i), 3) < 144.0) ++dense;
  }
  // The metro component holds ~65% of the points within a ball covering
  // ~0.7% of the space volume.
  EXPECT_GT(dense, ds.size() / 2);
}

}  // namespace
}  // namespace synth
}  // namespace rpdbscan
