// The eps-ladder hierarchy subsystem: option validation, forest
// structure, cluster nesting under monotone schedules, core-set-monotone
// seeding as a pure optimization, the sampled-core approximation, and the
// persisted hierarchy section of the snapshot container.

#include "hierarchy/eps_ladder.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "metrics/nmi.h"
#include "metrics/rand_index.h"
#include "serve/snapshot.h"
#include "synth/generators.h"
#include "test_seed.h"

namespace rpdbscan {
namespace {

HierarchyOptions Opts(std::vector<double> eps_levels, size_t min_pts) {
  HierarchyOptions o;
  o.eps_levels = std::move(eps_levels);
  o.min_pts_levels = {min_pts};
  o.num_threads = 2;
  o.num_partitions = 4;
  return o;
}

TEST(HierarchyTest, RejectsInvalidOptions) {
  const Dataset ds = synth::Blobs(200, 2, 1.0, 1);
  // No levels.
  EXPECT_FALSE(BuildClusterHierarchy(ds, Opts({}, 10)).ok());
  // Not strictly ascending.
  EXPECT_FALSE(BuildClusterHierarchy(ds, Opts({1.0, 1.0}, 10)).ok());
  EXPECT_FALSE(BuildClusterHierarchy(ds, Opts({2.0, 1.0}, 10)).ok());
  EXPECT_FALSE(BuildClusterHierarchy(ds, Opts({0.0, 1.0}, 10)).ok());
  // min_pts list neither 1 nor num-levels long, or containing zero.
  HierarchyOptions bad = Opts({1.0, 2.0, 3.0}, 10);
  bad.min_pts_levels = {10, 10};
  EXPECT_FALSE(BuildClusterHierarchy(ds, bad).ok());
  bad.min_pts_levels = {10, 0, 10};
  EXPECT_FALSE(BuildClusterHierarchy(ds, bad).ok());
  // Sampled-core fraction must be positive.
  bad = Opts({1.0, 2.0}, 10);
  bad.sampled_core_fraction = 0.0;
  EXPECT_FALSE(BuildClusterHierarchy(ds, bad).ok());
}

TEST(HierarchyTest, BuildsAValidForestOnBlobs) {
  const uint64_t seed = TestSeed(9100);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(4000, 5, 1.0, seed, 3);
  auto h = BuildClusterHierarchy(ds, Opts({0.8, 1.2, 1.8, 2.6}, 12));
  ASSERT_TRUE(h.ok()) << h.status();
  ASSERT_EQ(h->levels.size(), 4u);

  std::string err;
  EXPECT_TRUE(h->ValidateForest(&err)) << err;
  EXPECT_GT(h->num_cells, 0u);
  EXPECT_GT(h->dictionary_bytes, 0u);

  size_t prev_noise = ds.size() + 1;
  for (size_t i = 0; i < h->levels.size(); ++i) {
    const HierarchyLevel& level = h->levels[i];
    EXPECT_EQ(level.labels.size(), ds.size()) << "level " << i;
    EXPECT_EQ(level.parent.size(), level.num_clusters) << "level " << i;
    // Monotone schedule: eps grows and min_pts holds, so density only
    // relaxes — noise shrinks and clusters nest exactly.
    EXPECT_LE(level.num_noise_points, prev_noise) << "level " << i;
    prev_noise = level.num_noise_points;
    EXPECT_EQ(level.containment_violations, 0u) << "level " << i;
    EXPECT_EQ(level.seeded, i > 0) << "level " << i;
  }
  for (const uint32_t p : h->levels.back().parent) {
    EXPECT_EQ(p, kNoParent);
  }
  // Every non-top cluster with surviving points has a real container.
  const HierarchyLevel& finest = h->levels.front();
  EXPECT_GT(finest.num_clusters, 0u);
  size_t rooted = 0;
  for (const uint32_t p : finest.parent) {
    if (p != kNoParent) ++rooted;
  }
  EXPECT_GT(rooted, 0u);
}

TEST(HierarchyTest, SeedingIsAPureOptimization) {
  const uint64_t seed = TestSeed(9200);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(3000, 4, 1.0, seed, 2);
  HierarchyOptions seeded = Opts({0.9, 1.3, 2.0}, 10);
  HierarchyOptions unseeded = seeded;
  unseeded.seed_from_previous = false;
  auto a = BuildClusterHierarchy(ds, seeded);
  auto b = BuildClusterHierarchy(ds, unseeded);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->levels.size(), b->levels.size());
  for (size_t i = 0; i < a->levels.size(); ++i) {
    EXPECT_EQ(a->levels[i].labels, b->levels[i].labels) << "level " << i;
    EXPECT_EQ(a->levels[i].num_clusters, b->levels[i].num_clusters);
    EXPECT_EQ(a->levels[i].parent, b->levels[i].parent) << "level " << i;
    EXPECT_EQ(b->levels[i].seeded, false);
  }
}

TEST(HierarchyTest, RisingMinPtsDisablesSeedingForThatLevel) {
  const uint64_t seed = TestSeed(9300);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(2000, 3, 1.0, seed, 2);
  HierarchyOptions o = Opts({0.9, 1.3, 2.0}, 0);
  o.min_pts_levels = {10, 20, 15};  // level 1 rises, level 2 falls
  auto h = BuildClusterHierarchy(ds, o);
  ASSERT_TRUE(h.ok()) << h.status();
  EXPECT_FALSE(h->levels[0].seeded);
  EXPECT_FALSE(h->levels[1].seeded);  // min_pts rose: monotonicity broken
  EXPECT_TRUE(h->levels[2].seeded);
  std::string err;
  EXPECT_TRUE(h->ValidateForest(&err)) << err;
}

TEST(HierarchyTest, SampledCoresApproximateTheExactLadder) {
  const uint64_t seed = TestSeed(9400);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(4000, 4, 1.0, seed, 2);
  const HierarchyOptions exact = Opts({1.0, 1.5, 2.2}, 10);
  HierarchyOptions sampled = exact;
  sampled.sampled_core_fraction = 0.7;
  auto he = BuildClusterHierarchy(ds, exact);
  auto hs = BuildClusterHierarchy(ds, sampled);
  ASSERT_TRUE(he.ok()) << he.status();
  ASSERT_TRUE(hs.ok()) << hs.status();
  std::string err;
  EXPECT_TRUE(hs->ValidateForest(&err)) << err;
  for (size_t i = 0; i < he->levels.size(); ++i) {
    // A 70% core-cell sample keeps dense blobs essentially intact.
    auto ri = RandIndex(he->levels[i].labels, hs->levels[i].labels);
    ASSERT_TRUE(ri.ok());
    EXPECT_GE(*ri, 0.95) << "level " << i;
    EXPECT_LE(hs->levels[i].num_core_cells, he->levels[i].num_core_cells);
  }
  // Fraction 1.0 short-circuits to the exact ladder.
  HierarchyOptions full = exact;
  full.sampled_core_fraction = 1.0;
  auto hf = BuildClusterHierarchy(ds, full);
  ASSERT_TRUE(hf.ok());
  for (size_t i = 0; i < he->levels.size(); ++i) {
    EXPECT_EQ(he->levels[i].labels, hf->levels[i].labels);
  }
  // Same fraction and seed reproduce bit-identically.
  auto hs2 = BuildClusterHierarchy(ds, sampled);
  ASSERT_TRUE(hs2.ok());
  for (size_t i = 0; i < hs->levels.size(); ++i) {
    EXPECT_EQ(hs->levels[i].labels, hs2->levels[i].labels);
  }
}

TEST(HierarchyTest, CapturedModelsFreezePerLevel) {
  const uint64_t seed = TestSeed(9500);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(2000, 3, 1.2, seed, 2);
  HierarchyOptions o = Opts({1.0, 1.5, 2.2}, 10);
  o.capture_models = true;
  auto h = BuildClusterHierarchy(ds, o);
  ASSERT_TRUE(h.ok()) << h.status();
  for (size_t i = 0; i < h->levels.size(); ++i) {
    ASSERT_NE(h->levels[i].model, nullptr) << "level " << i;
    EXPECT_DOUBLE_EQ(h->levels[i].model->query_eps, h->levels[i].eps);
    EXPECT_EQ(h->levels[i].model->min_pts, h->levels[i].min_pts);
  }
}

TEST(HierarchyTest, SnapshotHierarchySectionRoundTrips) {
  const uint64_t seed = TestSeed(9600);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(2000, 3, 1.2, seed, 2);
  HierarchyOptions o = Opts({1.0, 1.6, 2.4}, 10);
  o.capture_models = true;
  auto h = BuildClusterHierarchy(ds, o);
  ASSERT_TRUE(h.ok()) << h.status();

  // Freeze the finest level and attach the whole ladder's lineage: each
  // level's per-cell table comes from its own frozen model.
  std::vector<ClusterModelSnapshot::HierarchyLevelInfo> lineage;
  std::vector<ClusterModelSnapshot> frozen;
  for (size_t i = 0; i < h->levels.size(); ++i) {
    auto snap =
        ClusterModelSnapshot::FromModel(std::move(*h->levels[i].model));
    ASSERT_TRUE(snap.ok()) << "level " << i << ": " << snap.status();
    ClusterModelSnapshot::HierarchyLevelInfo info;
    info.eps = h->levels[i].eps;
    info.min_pts = h->levels[i].min_pts;
    info.cell_cluster = snap->cell_cluster();
    info.parent = h->levels[i].parent;
    lineage.push_back(std::move(info));
    frozen.push_back(std::move(*snap));
  }
  ClusterModelSnapshot& finest = frozen.front();
  EXPECT_FALSE(finest.has_hierarchy());
  EXPECT_DOUBLE_EQ(finest.meta().query_eps, h->levels[0].eps);
  finest.set_hierarchy(lineage);
  ASSERT_TRUE(finest.has_hierarchy());

  const std::vector<uint8_t> bytes = finest.Serialize();
  auto loaded = ClusterModelSnapshot::Deserialize(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->has_hierarchy());
  ASSERT_EQ(loaded->hierarchy().size(), lineage.size());
  for (size_t i = 0; i < lineage.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->hierarchy()[i].eps, lineage[i].eps);
    EXPECT_EQ(loaded->hierarchy()[i].min_pts, lineage[i].min_pts);
    EXPECT_EQ(loaded->hierarchy()[i].cell_cluster, lineage[i].cell_cluster);
    EXPECT_EQ(loaded->hierarchy()[i].parent, lineage[i].parent);
  }
  EXPECT_DOUBLE_EQ(loaded->meta().query_eps, h->levels[0].eps);

  // A corrupted hierarchy section must fail validation, not load.
  std::vector<ClusterModelSnapshot::HierarchyLevelInfo> bad = lineage;
  bad[0].eps = bad[1].eps + 1.0;  // no longer ascending
  finest.set_hierarchy(bad);
  auto reloaded = ClusterModelSnapshot::Deserialize(finest.Serialize());
  EXPECT_FALSE(reloaded.ok());
}

TEST(HierarchyTest, SingleLevelLadderIsDegenerate) {
  const uint64_t seed = TestSeed(9700);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(1500, 3, 1.0, seed, 2);
  auto h = BuildClusterHierarchy(ds, Opts({1.0}, 10));
  ASSERT_TRUE(h.ok()) << h.status();
  ASSERT_EQ(h->levels.size(), 1u);
  EXPECT_FALSE(h->levels[0].seeded);
  for (const uint32_t p : h->levels[0].parent) {
    EXPECT_EQ(p, kNoParent);
  }
  std::string err;
  EXPECT_TRUE(h->ValidateForest(&err)) << err;
}

}  // namespace
}  // namespace rpdbscan
