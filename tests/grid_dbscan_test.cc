#include "baselines/grid_dbscan.h"

#include <gtest/gtest.h>

#include "baselines/exact_dbscan.h"
#include "metrics/cluster_stats.h"
#include "metrics/rand_index.h"
#include "synth/generators.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

TEST(GridDbscanTest, RejectsBadInputs) {
  const Dataset empty(2);
  EXPECT_FALSE(RunGridDbscan(empty, {1.0, 5}).ok());
  Dataset one(2);
  one.Append({0, 0});
  EXPECT_FALSE(RunGridDbscan(one, {0.0, 5}).ok());
  EXPECT_FALSE(RunGridDbscan(one, {1.0, 0}).ok());
}

TEST(GridDbscanTest, CoreFlagsMatchExactDbscanExactly) {
  // Coreness is a pointwise exact predicate: both exact algorithms must
  // agree bit for bit.
  const Dataset ds = synth::Blobs(3000, 5, 1.0, 91);
  auto grid = RunGridDbscan(ds, {1.0, 15});
  auto exact = RunExactDbscan(ds, {1.0, 15});
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(grid->point_is_core, exact->point_is_core);
}

TEST(GridDbscanTest, CorePointCoMembershipMatchesExact) {
  // Core points belong to exactly one cluster; the two exact algorithms
  // must agree on every core-core pair.
  const Dataset ds = synth::Moons(3000, 0.05, 92);
  const DbscanParams params{0.07, 10};
  auto grid = RunGridDbscan(ds, params);
  auto exact = RunExactDbscan(ds, params);
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(exact.ok());
  Rng rng(3);
  for (int trial = 0; trial < 5000; ++trial) {
    const size_t a = static_cast<size_t>(rng.Uniform(ds.size()));
    const size_t b = static_cast<size_t>(rng.Uniform(ds.size()));
    if (!grid->point_is_core[a] || !grid->point_is_core[b]) continue;
    EXPECT_EQ(grid->labels[a] == grid->labels[b],
              exact->labels[a] == exact->labels[b])
        << "pair " << a << "," << b;
  }
}

TEST(GridDbscanTest, RandIndexVsExactIsNearOne) {
  const Dataset ds = synth::ChameleonLike(4000, 93);
  const DbscanParams params{1.2, 12};
  auto grid = RunGridDbscan(ds, params);
  auto exact = RunExactDbscan(ds, params);
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(exact.ok());
  auto ri = RandIndex(grid->labels, exact->labels);
  ASSERT_TRUE(ri.ok());
  // Only border-point tie-breaking may differ.
  EXPECT_GE(*ri, 0.9995);
}

TEST(GridDbscanTest, DenseCellShortcut) {
  // One cell packed with >= minPts identical points: all core, one
  // cluster, no scans needed.
  Dataset ds(2);
  for (int i = 0; i < 50; ++i) ds.Append({5, 5});
  auto r = RunGridDbscan(ds, {1.0, 20});
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(r->point_is_core[i], 1);
    EXPECT_EQ(r->labels[i], r->labels[0]);
  }
  EXPECT_EQ(Summarize(r->labels).num_clusters, 1u);
}

TEST(GridDbscanTest, ChainAcrossManyCells) {
  // A chain spanning many cells exercises the 2-eps connectivity radius.
  Dataset ds(1);
  for (int i = 0; i < 200; ++i) ds.Append({static_cast<float>(i) * 0.45f});
  auto grid = RunGridDbscan(ds, {0.5, 2});
  auto exact = RunExactDbscan(ds, {0.5, 2});
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(Summarize(grid->labels).num_clusters, 1u);
  EXPECT_EQ(grid->point_is_core, exact->point_is_core);
}

TEST(GridDbscanTest, NoiseStaysNoise) {
  Dataset ds(2);
  for (int i = 0; i < 20; ++i) {
    ds.Append({static_cast<float>(i * 100), 0.0f});
  }
  auto r = RunGridDbscan(ds, {1.0, 3});
  ASSERT_TRUE(r.ok());
  for (const int64_t l : r->labels) EXPECT_EQ(l, kNoise);
}

TEST(GridDbscanTest, HighDimensional) {
  const Dataset ds = synth::TeraLike(1000, 94);
  const DbscanParams params{15.0, 8};
  auto grid = RunGridDbscan(ds, params);
  auto exact = RunExactDbscan(ds, params);
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(grid->point_is_core, exact->point_is_core);
  auto ri = RandIndex(grid->labels, exact->labels);
  ASSERT_TRUE(ri.ok());
  EXPECT_GE(*ri, 0.999);
}

}  // namespace
}  // namespace rpdbscan
