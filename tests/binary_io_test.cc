#include "io/binary.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "synth/generators.h"

namespace rpdbscan {
namespace {

class BinaryIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/binary_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".rpds";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(BinaryIoTest, RoundTripExact) {
  const Dataset ds = synth::Blobs(1234, 3, 1.0, 71, /*dim=*/5);
  ASSERT_TRUE(WriteBinary(path_, ds).ok());
  auto back = ReadBinary(path_);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->dim(), ds.dim());
  EXPECT_EQ(back->size(), ds.size());
  EXPECT_EQ(back->flat(), ds.flat());  // bit-exact
}

TEST_F(BinaryIoTest, RoundTripEmptyDataset) {
  const Dataset ds(4);
  ASSERT_TRUE(WriteBinary(path_, ds).ok());
  auto back = ReadBinary(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->dim(), 4u);
  EXPECT_EQ(back->size(), 0u);
}

TEST_F(BinaryIoTest, MissingFileIsIOError) {
  auto r = ReadBinary("/nonexistent/file.rpds");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(BinaryIoTest, RejectsWrongMagic) {
  std::ofstream out(path_, std::ios::binary);
  const char junk[32] = "definitely not an RPDS header..";
  out.write(junk, sizeof(junk));
  out.close();
  auto r = ReadBinary(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BinaryIoTest, RejectsTruncatedHeader) {
  std::ofstream out(path_, std::ios::binary);
  out.write("RPDS", 4);
  out.close();
  EXPECT_FALSE(ReadBinary(path_).ok());
}

TEST_F(BinaryIoTest, RejectsTruncatedPayload) {
  const Dataset ds = synth::Blobs(100, 2, 1.0, 72);
  ASSERT_TRUE(WriteBinary(path_, ds).ok());
  // Chop off the last 10 bytes.
  std::ifstream in(path_, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() - 10));
  out.close();
  auto r = ReadBinary(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BinaryIoTest, RejectsAbsurdCount) {
  // Header claiming 2^60 points over an 8-byte payload.
  std::ofstream out(path_, std::ios::binary);
  const uint32_t magic = 0x53445052;
  const uint32_t version = 1;
  const uint32_t dim = 2;
  const uint32_t reserved = 0;
  const uint64_t count = 1ULL << 60;
  out.write(reinterpret_cast<const char*>(&magic), 4);
  out.write(reinterpret_cast<const char*>(&version), 4);
  out.write(reinterpret_cast<const char*>(&dim), 4);
  out.write(reinterpret_cast<const char*>(&reserved), 4);
  out.write(reinterpret_cast<const char*>(&count), 8);
  const float payload[2] = {1, 2};
  out.write(reinterpret_cast<const char*>(payload), 8);
  out.close();
  EXPECT_FALSE(ReadBinary(path_).ok());
}

TEST_F(BinaryIoTest, ChecksumTrailerRoundTrip) {
  const Dataset ds = synth::Blobs(777, 4, 1.0, 74, /*dim=*/3);
  WriteBinaryOptions opts;
  opts.payload_checksum = true;
  ASSERT_TRUE(WriteBinary(path_, ds, opts).ok());
  auto info = InspectBinary(path_);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_TRUE(info->has_checksum);
  EXPECT_EQ(info->payload_bytes, ds.size() * ds.dim() * sizeof(float));
  EXPECT_EQ(info->file_bytes, info->payload_offset + info->payload_bytes + 16);
  auto back = ReadBinary(path_);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->flat(), ds.flat());
}

TEST_F(BinaryIoTest, ChecksumTrailerEmptyDataset) {
  WriteBinaryOptions opts;
  opts.payload_checksum = true;
  ASSERT_TRUE(WriteBinary(path_, Dataset(2), opts).ok());
  auto back = ReadBinary(path_);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->size(), 0u);
}

TEST_F(BinaryIoTest, ChecksumTrailerDetectsPayloadBitFlip) {
  const Dataset ds = synth::Blobs(300, 3, 1.0, 75);
  WriteBinaryOptions opts;
  opts.payload_checksum = true;
  ASSERT_TRUE(WriteBinary(path_, ds, opts).ok());
  // Flip one bit in the middle of the payload; the framing stays intact,
  // so only the checksum can catch it.
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(24 + 100);
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x10);
  f.seekp(24 + 100);
  f.write(&b, 1);
  f.close();
  auto r = ReadBinary(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("checksum"), std::string::npos)
      << r.status();
}

TEST_F(BinaryIoTest, ChecksumTrailerDetectsTrailerBitFlip) {
  const Dataset ds = synth::Blobs(300, 3, 1.0, 76);
  WriteBinaryOptions opts;
  opts.payload_checksum = true;
  ASSERT_TRUE(WriteBinary(path_, ds, opts).ok());
  // Corrupt the stored checksum itself (last 8 bytes of the file).
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(-1, std::ios::end);
  const char b = 0x7f;
  f.write(&b, 1);
  f.close();
  EXPECT_FALSE(ReadBinary(path_).ok());
}

TEST_F(BinaryIoTest, ChecksumTrailerDetectsTruncation) {
  const Dataset ds = synth::Blobs(300, 3, 1.0, 77);
  WriteBinaryOptions opts;
  opts.payload_checksum = true;
  ASSERT_TRUE(WriteBinary(path_, ds, opts).ok());
  // Chopping payload bytes shifts the trailer into the payload region:
  // the length check must reject it before any checksum work.
  std::ifstream in(path_, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  for (const size_t cut : {4u, 15u, 17u, 20u}) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() - cut));
    out.close();
    auto r = ReadBinary(path_);
    ASSERT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Cutting exactly the 16 trailer bytes yields a well-formed legacy file
  // (the trailer is optional); integrity protection is gone but the data
  // is intact — the reader accepts it by design.
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() - 16));
  out.close();
  auto legacy = ReadBinary(path_);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  EXPECT_EQ(legacy->flat(), ds.flat());
}

TEST_F(BinaryIoTest, InspectValidatesBeforeAllocation) {
  // A header advertising (2^61 points, dim 4) would overflow a naive
  // count*dim*4 size check into a small number; InspectBinary must reject
  // it against the actual file length without ever allocating.
  std::ofstream out(path_, std::ios::binary);
  const uint32_t magic = 0x53445052;
  const uint32_t version = 1;
  const uint32_t dim = 4;
  const uint32_t reserved = 0;
  const uint64_t count = 1ULL << 61;
  out.write(reinterpret_cast<const char*>(&magic), 4);
  out.write(reinterpret_cast<const char*>(&version), 4);
  out.write(reinterpret_cast<const char*>(&dim), 4);
  out.write(reinterpret_cast<const char*>(&reserved), 4);
  out.write(reinterpret_cast<const char*>(&count), 8);
  out.close();
  auto info = InspectBinary(path_);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BinaryIoTest, HighDimensionalRoundTrip) {
  const Dataset ds = synth::TeraLike(500, 73);
  ASSERT_TRUE(WriteBinary(path_, ds).ok());
  auto back = ReadBinary(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->dim(), 13u);
  EXPECT_EQ(back->flat(), ds.flat());
}

}  // namespace
}  // namespace rpdbscan
