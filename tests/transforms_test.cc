#include "io/transforms.h"

#include <gtest/gtest.h>

#include <cmath>

#include "synth/generators.h"

namespace rpdbscan {
namespace {

TEST(MinMaxTest, MapsExtremesToBounds) {
  Dataset ds(2);
  ds.Append({10, -5});
  ds.Append({20, 5});
  ds.Append({15, 0});
  auto t = FitMinMax(ds, 0.0, 1.0);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(ApplyTransform(*t, &ds).ok());
  EXPECT_FLOAT_EQ(ds.point(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(ds.point(1)[0], 1.0f);
  EXPECT_FLOAT_EQ(ds.point(0)[1], 0.0f);
  EXPECT_FLOAT_EQ(ds.point(1)[1], 1.0f);
  EXPECT_FLOAT_EQ(ds.point(2)[0], 0.5f);
  EXPECT_FLOAT_EQ(ds.point(2)[1], 0.5f);
}

TEST(MinMaxTest, CustomRange) {
  Dataset ds(1);
  ds.Append({0});
  ds.Append({10});
  auto t = FitMinMax(ds, -1.0, 1.0);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(ApplyTransform(*t, &ds).ok());
  EXPECT_FLOAT_EQ(ds.point(0)[0], -1.0f);
  EXPECT_FLOAT_EQ(ds.point(1)[0], 1.0f);
}

TEST(MinMaxTest, ConstantDimensionMapsToLo) {
  Dataset ds(2);
  ds.Append({7, 1});
  ds.Append({7, 2});
  auto t = FitMinMax(ds, 0.0, 1.0);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(ApplyTransform(*t, &ds).ok());
  EXPECT_FLOAT_EQ(ds.point(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(ds.point(1)[0], 0.0f);
}

TEST(MinMaxTest, RejectsBadArguments) {
  const Dataset empty(2);
  EXPECT_FALSE(FitMinMax(empty).ok());
  Dataset ds(1);
  ds.Append({1});
  EXPECT_FALSE(FitMinMax(ds, 1.0, 1.0).ok());  // hi == lo
  EXPECT_FALSE(FitMinMax(ds, 2.0, 1.0).ok());  // hi < lo
}

TEST(StandardizeTest, ZeroMeanUnitVariance) {
  const Dataset orig = synth::Blobs(5000, 3, 2.0, 81);
  Dataset ds = orig;
  auto t = FitStandardize(ds);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(ApplyTransform(*t, &ds).ok());
  for (size_t d = 0; d < ds.dim(); ++d) {
    double mean = 0;
    for (size_t i = 0; i < ds.size(); ++i) mean += ds.point(i)[d];
    mean /= static_cast<double>(ds.size());
    double var = 0;
    for (size_t i = 0; i < ds.size(); ++i) {
      const double delta = ds.point(i)[d] - mean;
      var += delta * delta;
    }
    var /= static_cast<double>(ds.size());
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(StandardizeTest, ConstantDimensionCenteredOnly) {
  Dataset ds(1);
  ds.Append({5});
  ds.Append({5});
  auto t = FitStandardize(ds);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(ApplyTransform(*t, &ds).ok());
  EXPECT_FLOAT_EQ(ds.point(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(ds.point(1)[0], 0.0f);
}

TEST(ApplyTransformTest, RejectsDimMismatch) {
  Dataset ds2(2);
  ds2.Append({1, 2});
  auto t = FitMinMax(ds2);
  ASSERT_TRUE(t.ok());
  Dataset ds3(3);
  ds3.Append({1, 2, 3});
  EXPECT_FALSE(ApplyTransform(*t, &ds3).ok());
  EXPECT_FALSE(ApplyTransform(*t, nullptr).ok());
}

TEST(ApplyTransformTest, TransformIsReusableOnNewPoints) {
  Dataset train(1);
  train.Append({0});
  train.Append({100});
  auto t = FitMinMax(train, 0.0, 1.0);
  ASSERT_TRUE(t.ok());
  float held_out[1] = {50};
  t->Apply(held_out);
  EXPECT_FLOAT_EQ(held_out[0], 0.5f);
}

}  // namespace
}  // namespace rpdbscan
