#include "core/grid.h"

#include <gtest/gtest.h>

#include <cmath>

#include "io/dataset.h"

namespace rpdbscan {
namespace {

TEST(GridGeometryTest, CellDiagonalIsEps) {
  auto g = GridGeometry::Create(3, 0.9, 0.01);
  ASSERT_TRUE(g.ok());
  // side * sqrt(d) == eps (Def. 3.1: diagonal length eps).
  EXPECT_NEAR(g->cell_side() * std::sqrt(3.0), 0.9, 1e-12);
}

TEST(GridGeometryTest, HFollowsDefinition41) {
  // h = 1 + ceil(log2(1/rho)).
  auto g1 = GridGeometry::Create(2, 1.0, 0.01);
  ASSERT_TRUE(g1.ok());
  EXPECT_EQ(g1->h(), 8);  // ceil(log2(100)) = 7
  EXPECT_EQ(g1->splits_per_dim(), 128);

  auto g2 = GridGeometry::Create(2, 1.0, 0.05);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->h(), 6);  // ceil(log2(20)) = 5

  auto g3 = GridGeometry::Create(2, 1.0, 0.5);
  ASSERT_TRUE(g3.ok());
  EXPECT_EQ(g3->h(), 2);

  auto g4 = GridGeometry::Create(2, 1.0, 1.0);
  ASSERT_TRUE(g4.ok());
  EXPECT_EQ(g4->h(), 1);  // the cell is its own sub-cell
  EXPECT_EQ(g4->splits_per_dim(), 1);
}

TEST(GridGeometryTest, SubcellDiagonalAtMostRhoEps) {
  // Lemma 5.2 relies on subcell diagonal <= rho * eps.
  for (const double rho : {0.01, 0.05, 0.10, 0.5}) {
    auto g = GridGeometry::Create(3, 2.0, rho);
    ASSERT_TRUE(g.ok());
    const double diag = g->subcell_side() * std::sqrt(3.0);
    EXPECT_LE(diag, rho * 2.0 + 1e-12) << "rho=" << rho;
  }
}

TEST(GridGeometryTest, RejectsBadParameters) {
  EXPECT_FALSE(GridGeometry::Create(0, 1.0, 0.01).ok());
  EXPECT_FALSE(GridGeometry::Create(17, 1.0, 0.01).ok());  // > kMaxDim
  EXPECT_FALSE(GridGeometry::Create(2, 0.0, 0.01).ok());
  EXPECT_FALSE(GridGeometry::Create(2, -1.0, 0.01).ok());
  EXPECT_FALSE(GridGeometry::Create(2, 1.0, 0.0).ok());
  EXPECT_FALSE(GridGeometry::Create(2, 1.0, 1.5).ok());
}

TEST(GridGeometryTest, RejectsSubcellBitsOverflow) {
  // 13 dims with very small rho would exceed the 128-bit SubcellId.
  EXPECT_FALSE(GridGeometry::Create(13, 1.0, 1e-4).ok());
  EXPECT_TRUE(GridGeometry::Create(13, 1.0, 0.01).ok());  // 91 bits, fits
}

TEST(GridGeometryTest, CellOfHandlesNegativeCoordinates) {
  auto g = GridGeometry::Create(2, std::sqrt(2.0), 0.5);  // side = 1
  ASSERT_TRUE(g.ok());
  const float p[2] = {-0.5f, 2.5f};
  const CellCoord c = g->CellOf(p);
  EXPECT_EQ(c[0], -1);
  EXPECT_EQ(c[1], 2);
}

TEST(GridGeometryTest, PointInsideItsCellBox) {
  auto g = GridGeometry::Create(3, 0.7, 0.01);
  ASSERT_TRUE(g.ok());
  const float p[3] = {13.37f, -4.2f, 0.001f};
  const Mbr box = g->CellBox(g->CellOf(p));
  EXPECT_TRUE(box.Contains(p));
}

TEST(GridGeometryTest, CellDistHelpersMatchMbr) {
  auto g = GridGeometry::Create(3, 1.1, 0.1);
  ASSERT_TRUE(g.ok());
  const float probes[][3] = {
      {0, 0, 0}, {5.5f, -2.2f, 8.8f}, {-10, 20, -30}, {0.3f, 0.3f, 0.3f}};
  const float anchors[][3] = {
      {0.1f, 0.1f, 0.1f}, {5, -2, 9}, {-9.7f, 19.9f, -30.2f}};
  for (const auto& a : anchors) {
    const CellCoord c = g->CellOf(a);
    const Mbr box = g->CellBox(c);
    for (const auto& p : probes) {
      EXPECT_NEAR(g->CellMinDist2(c, p), box.MinDist2(p), 1e-9);
      EXPECT_NEAR(g->CellMaxDist2(c, p), box.MaxDist2(p), 1e-9);
    }
  }
}

TEST(GridGeometryTest, CellCenterInsideBox) {
  auto g = GridGeometry::Create(2, 1.0, 0.1);
  ASSERT_TRUE(g.ok());
  const float p[2] = {5.0f, 7.0f};
  const CellCoord c = g->CellOf(p);
  float center[2];
  g->CellCenter(c, center);
  EXPECT_TRUE(g->CellBox(c).Contains(center));
}

TEST(GridGeometryTest, SubcellCenterWithinHalfSubcellDiagonalOfPoint) {
  // The approximation bound of Lemma 5.2: any point and the center of its
  // sub-cell differ by at most rho*eps/2.
  const double eps = 1.3;
  const double rho = 0.05;
  auto g = GridGeometry::Create(3, eps, rho);
  ASSERT_TRUE(g.ok());
  const float points[][3] = {
      {0.0f, 0.0f, 0.0f},
      {1.234f, -5.678f, 9.999f},
      {-0.001f, 0.001f, 100.0f},
      {42.42f, 13.13f, -7.77f},
  };
  for (const auto& p : points) {
    const CellCoord c = g->CellOf(p);
    const SubcellId sc = g->SubcellOf(p, c);
    float center[3];
    g->SubcellCenter(c, sc, center);
    const double dist = std::sqrt(DistanceSquared(p, center, 3));
    EXPECT_LE(dist, rho * eps / 2.0 + 1e-6);
  }
}

TEST(GridGeometryTest, RhoOneSubcellIsWholeCell) {
  auto g = GridGeometry::Create(2, 1.0, 1.0);
  ASSERT_TRUE(g.ok());
  const float p[2] = {3.3f, 4.4f};
  const CellCoord c = g->CellOf(p);
  const SubcellId sc = g->SubcellOf(p, c);
  EXPECT_EQ(sc.lo, 0u);
  EXPECT_EQ(sc.hi, 0u);
  float sub_center[2];
  float cell_center[2];
  g->SubcellCenter(c, sc, sub_center);
  g->CellCenter(c, cell_center);
  EXPECT_FLOAT_EQ(sub_center[0], cell_center[0]);
  EXPECT_FLOAT_EQ(sub_center[1], cell_center[1]);
}

TEST(GridGeometryTest, DistinctSubcellsForDistantPointsInCell) {
  auto g = GridGeometry::Create(2, 1.0, 0.01);
  ASSERT_TRUE(g.ok());
  // Two points in the same cell but far apart within it.
  const double side = g->cell_side();
  const float p1[2] = {static_cast<float>(side * 0.05),
                       static_cast<float>(side * 0.05)};
  const float p2[2] = {static_cast<float>(side * 0.95),
                       static_cast<float>(side * 0.95)};
  const CellCoord c1 = g->CellOf(p1);
  const CellCoord c2 = g->CellOf(p2);
  EXPECT_EQ(c1, c2);
  EXPECT_FALSE(g->SubcellOf(p1, c1) == g->SubcellOf(p2, c2));
}

}  // namespace
}  // namespace rpdbscan
