#include "io/section_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace rpdbscan {
namespace {

constexpr uint32_t kMagic = 0x54534554;  // "TEST"
constexpr uint32_t kVersion = 3;

std::vector<uint8_t> Payload(size_t n, uint8_t base) {
  std::vector<uint8_t> p(n);
  for (size_t i = 0; i < n; ++i) p[i] = static_cast<uint8_t>(base + i);
  return p;
}

std::vector<uint8_t> MakeContainer() {
  SectionFileWriter writer(kMagic, kVersion);
  writer.AddSection(1, Payload(13, 7));
  writer.AddSection(5, {});  // empty sections are legal
  writer.AddSection(2, Payload(100, 42));
  return writer.Finish();
}

TEST(SectionFileTest, RoundTripsSectionsInOrder) {
  const std::vector<uint8_t> bytes = MakeContainer();
  auto reader =
      SectionFileReader::Parse(bytes.data(), bytes.size(), kMagic, kVersion,
                               "test");
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_EQ(reader->entries().size(), 3u);
  EXPECT_EQ(reader->entries()[0].id, 1u);
  EXPECT_EQ(reader->entries()[1].id, 5u);
  EXPECT_EQ(reader->entries()[2].id, 2u);
  EXPECT_TRUE(reader->Has(5));
  EXPECT_FALSE(reader->Has(4));

  auto s1 = reader->Section(1, "alpha");
  ASSERT_TRUE(s1.ok()) << s1.status();
  const std::vector<uint8_t> expect = Payload(13, 7);
  ASSERT_EQ(s1->size, expect.size());
  EXPECT_EQ(std::vector<uint8_t>(s1->data, s1->data + s1->size), expect);

  auto s5 = reader->Section(5, "empty");
  ASSERT_TRUE(s5.ok()) << s5.status();
  EXPECT_EQ(s5->size, 0u);
}

TEST(SectionFileTest, MissingSectionIsNotFound) {
  const std::vector<uint8_t> bytes = MakeContainer();
  auto reader =
      SectionFileReader::Parse(bytes.data(), bytes.size(), kMagic, kVersion,
                               "test");
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto missing = reader->Section(9, "ghost");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("ghost"), std::string::npos);
}

TEST(SectionFileTest, WrongMagicAndVersionAreHeaderErrors) {
  const std::vector<uint8_t> bytes = MakeContainer();
  auto bad_magic = SectionFileReader::Parse(bytes.data(), bytes.size(),
                                            kMagic + 1, kVersion, "test");
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_NE(bad_magic.status().message().find("test header"),
            std::string::npos)
      << bad_magic.status();
  auto bad_version = SectionFileReader::Parse(bytes.data(), bytes.size(),
                                              kMagic, kVersion + 1, "test");
  ASSERT_FALSE(bad_version.ok());
  EXPECT_NE(bad_version.status().message().find("version"),
            std::string::npos)
      << bad_version.status();
}

TEST(SectionFileTest, EveryTruncationFailsCleanly) {
  const std::vector<uint8_t> bytes = MakeContainer();
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::vector<uint8_t> bad(bytes.begin(),
                             bytes.begin() + static_cast<long>(keep));
    auto reader = SectionFileReader::Parse(bad.data(), bad.size(), kMagic,
                                           kVersion, "test");
    if (!reader.ok()) continue;  // framing already rejected it
    // Framing parsed (payload-only truncation is caught per section).
    for (const SectionEntry& e : reader->entries()) {
      auto span = reader->Section(e.id, "s");
      if (span.ok()) {
        // Fully intact section: content must match the original.
        auto orig = SectionFileReader::Parse(bytes.data(), bytes.size(),
                                             kMagic, kVersion, "test");
        auto ospan = orig->Section(e.id, "s");
        ASSERT_TRUE(ospan.ok());
        ASSERT_EQ(span->size, ospan->size);
      }
    }
  }
}

TEST(SectionFileTest, PayloadCorruptionNamesTheSection) {
  std::vector<uint8_t> bytes = MakeContainer();
  bytes.back() ^= 0x80;  // last payload byte belongs to section id 2
  auto reader =
      SectionFileReader::Parse(bytes.data(), bytes.size(), kMagic, kVersion,
                               "test");
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto span = reader->Section(2, "beta");
  ASSERT_FALSE(span.ok());
  EXPECT_NE(span.status().message().find("checksum mismatch"),
            std::string::npos)
      << span.status();
  EXPECT_NE(span.status().message().find("beta"), std::string::npos);
  // Other sections stay readable — checksums are per section.
  EXPECT_TRUE(reader->Section(1, "alpha").ok());
}

TEST(SectionFileTest, FileBytesRoundTrip) {
  const std::vector<uint8_t> bytes = MakeContainer();
  const std::string path = ::testing::TempDir() + "section_file_test.bin";
  ASSERT_TRUE(WriteFileBytes(path, bytes).ok());
  auto back = ReadFileBytes(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, bytes);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadFileBytes(path).ok());
}

}  // namespace
}  // namespace rpdbscan
