// Drives the real rpdbscan_cli binary through the out-of-core flags:
// convert to .rpds, cluster it --mmap'd under a deliberately small
// --memory-budget with forked --shard-workers, and check the produced
// labels byte-equal the ordinary in-RAM run. Mirrors cli_integration_test
// (binary path injected via RPDBSCAN_CLI).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace rpdbscan {
namespace {

class OocoreCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* cli = std::getenv("RPDBSCAN_CLI");
    ASSERT_NE(cli, nullptr)
        << "RPDBSCAN_CLI must point at the rpdbscan_cli binary";
    cli_ = cli;
    dir_ = ::testing::TempDir() + "/oocore_cli_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    const std::string mkdir = "mkdir -p " + dir_;
    ASSERT_EQ(std::system(mkdir.c_str()), 0);
  }
  void TearDown() override {
    const std::string rm = "rm -rf " + dir_;
    (void)std::system(rm.c_str());
  }

  int Run(const std::string& args) {
    const std::string cmd = cli_ + " " + args + " > " + dir_ +
                            "/stdout.txt 2> " + dir_ + "/stderr.txt";
    const int rc = std::system(cmd.c_str());
    return rc == -1 ? -1 : WEXITSTATUS(rc);
  }

  std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  std::string cli_;
  std::string dir_;
};

TEST_F(OocoreCliTest, MmapShardedLabelsMatchInRamRun) {
  const std::string rpds = dir_ + "/pts.rpds";
  ASSERT_EQ(Run("--generate=geolife --n=20000 --seed=5 --convert=" + rpds),
            0);
  const std::string ram_csv = dir_ + "/ram.csv";
  const std::string mmap_csv = dir_ + "/mmap.csv";
  ASSERT_EQ(Run("--input=" + rpds +
                " --eps=2.0 --minpts=20 --output=" + ram_csv),
            0);
  // 256k budget over a ~240KB payload forces several spill runs; two
  // forked shard workers exercise the multi-process Phase I-2.
  ASSERT_EQ(Run("--input=" + rpds +
                " --mmap --memory-budget=256k --shard-workers=2 "
                "--audit=cheap --eps=2.0 --minpts=20 --stats "
                "--output=" +
                mmap_csv),
            0);
  const std::string ram = ReadFile(ram_csv);
  const std::string mm = ReadFile(mmap_csv);
  ASSERT_FALSE(ram.empty());
  EXPECT_EQ(mm, ram) << "labels diverged between mmap and in-RAM runs";
  // The stats block must record that the out-of-core path actually ran.
  const std::string out = ReadFile(dir_ + "/stdout.txt");
  EXPECT_NE(out.find("out-of-core phase1"), std::string::npos) << out;
  EXPECT_NE(out.find("sharded phase I-2"), std::string::npos) << out;
}

TEST_F(OocoreCliTest, StatsJsonRecordsOocoreFields) {
  const std::string rpds = dir_ + "/pts.rpds";
  ASSERT_EQ(Run("--generate=blobs --n=8000 --seed=6 --convert=" + rpds), 0);
  const std::string json_path = dir_ + "/stats.json";
  ASSERT_EQ(Run("--input=" + rpds +
                " --mmap --memory-budget=128k --shard-workers=2 "
                "--eps=1.0 --minpts=15 --stats-json=" +
                json_path),
            0);
  const std::string json = ReadFile(json_path);
  for (const char* key :
       {"\"external_phase1\"", "\"external_chunks\"",
        "\"external_spill_bytes\"", "\"memory_budget_bytes\"",
        "\"shard_workers\"", "\"shard_shuffle_bytes\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("\"external_phase1\":true"), std::string::npos)
      << json;
}

TEST_F(OocoreCliTest, MmapRequiresRpdsInput) {
  const std::string csv = dir_ + "/pts.csv";
  ASSERT_EQ(Run("--generate=blobs --n=500 --eps=1.0 --minpts=10 --output=" +
                csv),
            0);
  EXPECT_NE(Run("--input=" + csv + " --mmap --eps=1.0 --minpts=10"), 0);
  EXPECT_NE(Run("--generate=blobs --n=500 --mmap --eps=1.0 --minpts=10"),
            0);
}

TEST_F(OocoreCliTest, MmapRejectsNormalizeAndNonRpAlgos) {
  const std::string rpds = dir_ + "/pts.rpds";
  ASSERT_EQ(Run("--generate=blobs --n=500 --seed=7 --convert=" + rpds), 0);
  EXPECT_NE(Run("--input=" + rpds +
                " --mmap --normalize=minmax --eps=1.0 --minpts=10"),
            0);
  EXPECT_NE(Run("--input=" + rpds +
                " --mmap --algo=exact --eps=1.0 --minpts=10"),
            0);
}

TEST_F(OocoreCliTest, BadByteSizeAndShardFlagsRejected) {
  const std::string rpds = dir_ + "/pts.rpds";
  ASSERT_EQ(Run("--generate=blobs --n=500 --seed=8 --convert=" + rpds), 0);
  EXPECT_NE(Run("--input=" + rpds +
                " --mmap --memory-budget=64q --eps=1.0 --minpts=10"),
            0);
  EXPECT_NE(Run("--input=" + rpds +
                " --mmap --memory-budget=0 --eps=1.0 --minpts=10"),
            0);
  EXPECT_NE(Run("--input=" + rpds +
                " --shard-workers=-2 --eps=1.0 --minpts=10"),
            0);
}

}  // namespace
}  // namespace rpdbscan
