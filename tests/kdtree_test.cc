#include "spatial/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "io/dataset.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

// Brute-force reference for radius queries.
std::vector<uint32_t> BruteRadius(const Dataset& ds, const float* q,
                                  double r) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (DistanceSquared(q, ds.point(i), ds.dim()) <= r * r) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

Dataset RandomDataset(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Dataset ds(dim);
  ds.Reserve(n);
  std::vector<float> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = static_cast<float>(rng.UniformDouble(0, 100));
    ds.Append(p.data());
  }
  return ds;
}

TEST(KdTreeTest, EmptyTreeReturnsNothing) {
  KdTree tree;
  tree.Build(nullptr, 0, 2);
  const float q[2] = {0, 0};
  EXPECT_TRUE(tree.RadiusSearch(q, 10).empty());
}

TEST(KdTreeTest, SinglePoint) {
  Dataset ds(2);
  ds.Append({5, 5});
  KdTree tree;
  tree.Build(ds.flat().data(), ds.size(), 2);
  const float near[2] = {5.5f, 5.0f};
  const float far[2] = {50, 50};
  EXPECT_EQ(tree.RadiusSearch(near, 1.0).size(), 1u);
  EXPECT_TRUE(tree.RadiusSearch(far, 1.0).empty());
}

TEST(KdTreeTest, RadiusIsClosedBall) {
  Dataset ds(1);
  ds.Append({0});
  ds.Append({1});
  KdTree tree;
  tree.Build(ds.flat().data(), ds.size(), 1);
  const float q[1] = {0};
  EXPECT_EQ(tree.RadiusSearch(q, 1.0).size(), 2u);  // boundary included
}

TEST(KdTreeTest, DuplicatePointsAllFound) {
  Dataset ds(2);
  for (int i = 0; i < 20; ++i) ds.Append({1, 1});
  KdTree tree;
  tree.Build(ds.flat().data(), ds.size(), 2, /*leaf_size=*/4);
  const float q[2] = {1, 1};
  EXPECT_EQ(tree.RadiusSearch(q, 0.1).size(), 20u);
}

TEST(KdTreeTest, MatchesBruteForce2d) {
  const Dataset ds = RandomDataset(2000, 2, 42);
  KdTree tree;
  tree.Build(ds.flat().data(), ds.size(), ds.dim());
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const float q[2] = {static_cast<float>(rng.UniformDouble(0, 100)),
                        static_cast<float>(rng.UniformDouble(0, 100))};
    const double r = rng.UniformDouble(0.5, 15.0);
    auto got = tree.RadiusSearch(q, r);
    auto want = BruteRadius(ds, q, r);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "trial " << trial << " r=" << r;
  }
}

TEST(KdTreeTest, MatchesBruteForceHighDim) {
  const Dataset ds = RandomDataset(500, 7, 43);
  KdTree tree;
  tree.Build(ds.flat().data(), ds.size(), ds.dim());
  Rng rng(8);
  std::vector<float> q(7);
  for (int trial = 0; trial < 20; ++trial) {
    for (auto& v : q) v = static_cast<float>(rng.UniformDouble(0, 100));
    const double r = rng.UniformDouble(10.0, 60.0);
    auto got = tree.RadiusSearch(q.data(), r);
    auto want = BruteRadius(ds, q.data(), r);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

TEST(KdTreeTest, ForEachReportsCorrectDistances) {
  const Dataset ds = RandomDataset(300, 3, 44);
  KdTree tree;
  tree.Build(ds.flat().data(), ds.size(), ds.dim());
  const float q[3] = {50, 50, 50};
  tree.ForEachInRadius(q, 30.0, [&](uint32_t id, double d2) {
    EXPECT_NEAR(d2, DistanceSquared(q, ds.point(id), 3), 1e-9);
    EXPECT_LE(d2, 900.0 + 1e-9);
  });
}

TEST(KdTreeTest, CountInRadiusMatchesSearchSize) {
  const Dataset ds = RandomDataset(1000, 2, 45);
  KdTree tree;
  tree.Build(ds.flat().data(), ds.size(), ds.dim());
  const float q[2] = {50, 50};
  EXPECT_EQ(tree.CountInRadius(q, 20.0),
            tree.RadiusSearch(q, 20.0).size());
}

TEST(KdTreeTest, CountInRadiusHonorsCap) {
  Dataset ds(2);
  for (int i = 0; i < 100; ++i) ds.Append({0, 0});
  KdTree tree;
  tree.Build(ds.flat().data(), ds.size(), 2);
  const float q[2] = {0, 0};
  EXPECT_EQ(tree.CountInRadius(q, 1.0, /*cap=*/10), 10u);
}

TEST(KdTreeTest, KNearestMatchesBruteForce) {
  const Dataset ds = RandomDataset(1500, 3, 47);
  KdTree tree;
  tree.Build(ds.flat().data(), ds.size(), ds.dim());
  Rng rng(9);
  for (int trial = 0; trial < 25; ++trial) {
    const float q[3] = {static_cast<float>(rng.UniformDouble(0, 100)),
                        static_cast<float>(rng.UniformDouble(0, 100)),
                        static_cast<float>(rng.UniformDouble(0, 100))};
    const size_t k = 1 + rng.Uniform(20);
    const auto got = tree.KNearest(q, k);
    // Brute-force reference.
    std::vector<std::pair<double, uint32_t>> want;
    for (size_t i = 0; i < ds.size(); ++i) {
      want.push_back({DistanceSquared(q, ds.point(i), 3),
                      static_cast<uint32_t>(i)});
    }
    std::sort(want.begin(), want.end());
    want.resize(k);
    ASSERT_EQ(got.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(got[i].first, want[i].first, 1e-9) << "rank " << i;
    }
  }
}

TEST(KdTreeTest, KNearestSortedAscending) {
  const Dataset ds = RandomDataset(500, 2, 48);
  KdTree tree;
  tree.Build(ds.flat().data(), ds.size(), 2);
  const float q[2] = {50, 50};
  const auto knn = tree.KNearest(q, 32);
  for (size_t i = 1; i < knn.size(); ++i) {
    EXPECT_GE(knn[i].first, knn[i - 1].first);
  }
}

TEST(KdTreeTest, KNearestKLargerThanTree) {
  const Dataset ds = RandomDataset(10, 2, 49);
  KdTree tree;
  tree.Build(ds.flat().data(), ds.size(), 2);
  const float q[2] = {0, 0};
  EXPECT_EQ(tree.KNearest(q, 100).size(), 10u);
  EXPECT_TRUE(tree.KNearest(q, 0).empty());
}

TEST(KdTreeTest, LeafSizeOneStillCorrect) {
  const Dataset ds = RandomDataset(200, 2, 46);
  KdTree tree;
  tree.Build(ds.flat().data(), ds.size(), 2, /*leaf_size=*/1);
  const float q[2] = {50, 50};
  auto got = tree.RadiusSearch(q, 25.0);
  auto want = BruteRadius(ds, q, 25.0);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(KdTreeTest, CollectInRadiusMatchesCallbackFormAndAppends) {
  const Dataset ds = RandomDataset(2000, 3, 17);
  KdTree tree;
  tree.Build(ds.flat().data(), ds.size(), ds.dim());
  for (const double r : {0.0, 2.0, 10.0, 200.0}) {
    const float* q = ds.point(11);
    std::vector<uint32_t> got = {4242};  // must append, not clear
    tree.CollectInRadius(q, r, &got);
    ASSERT_GE(got.size(), 1u);
    EXPECT_EQ(got.front(), 4242u);
    got.erase(got.begin());
    // Same ids in the same visit order as the callback form.
    std::vector<uint32_t> want;
    tree.ForEachInRadius(q, r,
                         [&want](uint32_t id, double) { want.push_back(id); });
    EXPECT_EQ(got, want);
  }
}

TEST(KdTreeTest, CollectInRadiusEmptyTree) {
  KdTree tree;
  tree.Build(nullptr, 0, 2);
  const float q[2] = {0, 0};
  std::vector<uint32_t> got;
  tree.CollectInRadius(q, 10, &got);
  EXPECT_TRUE(got.empty());
}

}  // namespace
}  // namespace rpdbscan
