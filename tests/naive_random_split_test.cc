#include "baselines/naive_random_split.h"

#include <gtest/gtest.h>

#include "baselines/exact_dbscan.h"
#include "core/rp_dbscan.h"
#include "metrics/cluster_stats.h"
#include "metrics/rand_index.h"
#include "synth/generators.h"

namespace rpdbscan {
namespace {

TEST(NaiveRandomSplitTest, RejectsBadInputs) {
  const Dataset empty(2);
  NaiveRandomSplitOptions o;
  o.params = {1.0, 10};
  EXPECT_FALSE(RunNaiveRandomSplitDbscan(empty, o).ok());
  const Dataset ds = synth::Blobs(100, 2, 1.0, 1);
  o.params = {0.0, 10};
  EXPECT_FALSE(RunNaiveRandomSplitDbscan(ds, o).ok());
  o.params = {1.0, 0};
  EXPECT_FALSE(RunNaiveRandomSplitDbscan(ds, o).ok());
  o.params = {1.0, 10};
  o.num_splits = 0;
  EXPECT_FALSE(RunNaiveRandomSplitDbscan(ds, o).ok());
}

TEST(NaiveRandomSplitTest, SingleSplitMatchesExactDbscan) {
  const Dataset ds = synth::Blobs(2000, 4, 1.0, 2);
  NaiveRandomSplitOptions o;
  o.params = {1.0, 12};
  o.num_splits = 1;
  o.scale_min_pts = false;
  auto naive = RunNaiveRandomSplitDbscan(ds, o);
  ASSERT_TRUE(naive.ok());
  auto exact = RunExactDbscan(ds, {1.0, 12});
  ASSERT_TRUE(exact.ok());
  auto ri = RandIndex(naive->labels, exact->labels);
  ASSERT_TRUE(ri.ok());
  EXPECT_DOUBLE_EQ(*ri, 1.0);
}

TEST(NaiveRandomSplitTest, RecoversWellSeparatedBlobsApproximately) {
  const Dataset ds = synth::Blobs(8000, 4, 0.8, 3);
  NaiveRandomSplitOptions o;
  o.params = {1.0, 16};
  o.num_splits = 4;
  auto r = RunNaiveRandomSplitDbscan(ds, o);
  ASSERT_TRUE(r.ok());
  const ClusterSummary s = Summarize(r->labels);
  // Blob structure must be broadly recovered (it may fragment/over-noise
  // a bit — that is the point of this baseline).
  EXPECT_GE(s.num_clusters, 4u);
  EXPECT_LE(s.num_clusters, 12u);
}

TEST(NaiveRandomSplitTest, LessAccurateThanRpDbscanOnHardData) {
  // The Sec. 2.2.1 claim: naive random split trades accuracy for speed;
  // RP-DBSCAN keeps exactness via the cell dictionary. On thin structures
  // (moons) density dilution hurts the naive variant.
  const Dataset ds = synth::Moons(6000, 0.05, 4);
  auto exact = RunExactDbscan(ds, {0.06, 16});
  ASSERT_TRUE(exact.ok());

  NaiveRandomSplitOptions no;
  no.params = {0.06, 16};
  no.num_splits = 8;
  auto naive = RunNaiveRandomSplitDbscan(ds, no);
  ASSERT_TRUE(naive.ok());

  RpDbscanOptions ro;
  ro.eps = 0.06;
  ro.min_pts = 16;
  ro.num_threads = 2;
  auto rp = RunRpDbscan(ds, ro);
  ASSERT_TRUE(rp.ok());

  auto naive_ri = RandIndex(naive->labels, exact->labels);
  auto rp_ri = RandIndex(rp->labels, exact->labels);
  ASSERT_TRUE(naive_ri.ok());
  ASSERT_TRUE(rp_ri.ok());
  EXPECT_GT(*rp_ri, *naive_ri);
  EXPECT_GE(*rp_ri, 0.99);
}

TEST(NaiveRandomSplitTest, DeterministicForSeed) {
  const Dataset ds = synth::Blobs(1500, 3, 1.0, 5);
  NaiveRandomSplitOptions o;
  o.params = {1.0, 12};
  o.num_splits = 4;
  o.seed = 77;
  auto a = RunNaiveRandomSplitDbscan(ds, o);
  auto b = RunNaiveRandomSplitDbscan(ds, o);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
}

}  // namespace
}  // namespace rpdbscan
