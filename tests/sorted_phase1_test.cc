// Equivalence of the two Phase I-1 engines: the sorted CSR build
// (key encoding + radix sort + CSR emit) must reproduce the seed hash-map
// scan bit for bit — same dense cell ids, same point order within cells,
// same partition assignment, and therefore identical clustering — across
// dimensionalities, seeds, partition counts, and thread counts.

#include <gtest/gtest.h>

#include <vector>

#include "core/cell_set.h"
#include "core/rp_dbscan.h"
#include "parallel/thread_pool.h"
#include "synth/generators.h"
#include "util/random.h"

#include "test_seed.h"

namespace rpdbscan {
namespace {

GridGeometry MakeGeom(size_t dim, double eps, double rho = 0.01) {
  auto g = GridGeometry::Create(dim, eps, rho);
  EXPECT_TRUE(g.ok());
  return *g;
}

/// Asserts the two cell sets are structurally identical: cells, CSR
/// arrays, and partition assignment.
void ExpectSameCellSet(const CellSet& a, const CellSet& b) {
  ASSERT_EQ(a.num_cells(), b.num_cells());
  ASSERT_EQ(a.cell_point_offsets(), b.cell_point_offsets());
  ASSERT_EQ(a.point_ids(), b.point_ids());
  for (uint32_t c = 0; c < a.num_cells(); ++c) {
    EXPECT_EQ(a.cell(c).coord, b.cell(c).coord) << "cell " << c;
    EXPECT_EQ(a.cell(c).owner_partition, b.cell(c).owner_partition);
  }
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  for (uint32_t p = 0; p < a.num_partitions(); ++p) {
    EXPECT_EQ(a.partition(p), b.partition(p)) << "partition " << p;
    EXPECT_EQ(a.PartitionPoints(p), b.PartitionPoints(p));
  }
}

TEST(SortedPhase1Test, MatchesHashMapAcrossDimsSeedsAndPartitions) {
  ThreadPool pool(4);
  const uint64_t seed = TestSeed(2024);
  SCOPED_TRACE(SeedNote(seed));
  Rng rng(seed);
  for (int round = 0; round < 6; ++round) {
    const uint64_t data_seed = rng.Next();
    const size_t num_partitions = 1 + rng.Uniform(17);
    const uint64_t split_seed = rng.Next();
    struct Config {
      Dataset data;
      GridGeometry geom;
    };
    const Config configs[] = {
        {synth::Moons(3000, 0.05, data_seed), MakeGeom(2, 0.15)},
        {synth::GeoLifeLike(4000, data_seed), MakeGeom(3, 1.0)},
        {synth::TeraLike(1200, data_seed), MakeGeom(13, 30.0)},
    };
    for (const Config& cfg : configs) {
      auto sorted = CellSet::Build(cfg.data, cfg.geom, num_partitions,
                                   split_seed, &pool, /*sorted=*/true);
      auto sorted_seq = CellSet::Build(cfg.data, cfg.geom, num_partitions,
                                       split_seed, nullptr, /*sorted=*/true);
      auto hashed = CellSet::Build(cfg.data, cfg.geom, num_partitions,
                                   split_seed, nullptr, /*sorted=*/false);
      ASSERT_TRUE(sorted.ok());
      ASSERT_TRUE(sorted_seq.ok());
      ASSERT_TRUE(hashed.ok());
      EXPECT_TRUE(sorted->breakdown().sorted_path_used);
      EXPECT_TRUE(sorted_seq->breakdown().sorted_path_used);
      EXPECT_FALSE(hashed->breakdown().sorted_path_used);
      ExpectSameCellSet(*sorted, *hashed);
      ExpectSameCellSet(*sorted_seq, *hashed);
    }
  }
}

TEST(SortedPhase1Test, NegativeCoordinatesGroupIdentically) {
  Dataset ds(2);
  const uint64_t seed = TestSeed(99);
  SCOPED_TRACE(SeedNote(seed));
  Rng rng(seed);
  for (int i = 0; i < 3000; ++i) {
    ds.Append({static_cast<float>(rng.UniformDouble(-50.0, 50.0)),
               static_cast<float>(rng.UniformDouble(-50.0, 50.0))});
  }
  const GridGeometry geom = MakeGeom(2, 1.5);
  auto sorted = CellSet::Build(ds, geom, 6, 11, nullptr, /*sorted=*/true);
  auto hashed = CellSet::Build(ds, geom, 6, 11, nullptr, /*sorted=*/false);
  ASSERT_TRUE(sorted.ok());
  ASSERT_TRUE(hashed.ok());
  EXPECT_TRUE(sorted->breakdown().sorted_path_used);
  ExpectSameCellSet(*sorted, *hashed);
}

TEST(SortedPhase1Test, OverflowingKeyFallsBackToHashMap) {
  // 16 dims x a fine grid: the per-dimension lattice ranges need far more
  // than 128 key bits, so the sorted build must detect it and fall back —
  // and still produce the identical structure.
  Dataset ds(16);
  const uint64_t seed = TestSeed(5);
  SCOPED_TRACE(SeedNote(seed));
  Rng rng(seed);
  std::vector<float> p(16);
  for (int i = 0; i < 400; ++i) {
    for (auto& v : p) {
      v = static_cast<float>(rng.UniformDouble(0.0, 100.0));
    }
    ds.Append(p.data());
  }
  const GridGeometry geom = MakeGeom(16, 0.05, /*rho=*/1.0);
  auto sorted = CellSet::Build(ds, geom, 4, 3, nullptr, /*sorted=*/true);
  auto hashed = CellSet::Build(ds, geom, 4, 3, nullptr, /*sorted=*/false);
  ASSERT_TRUE(sorted.ok());
  ASSERT_TRUE(hashed.ok());
  EXPECT_FALSE(sorted->breakdown().sorted_path_used);
  ExpectSameCellSet(*sorted, *hashed);
}

TEST(SortedPhase1Test, EndToEndClusteringIsBitIdentical) {
  const uint64_t seed = TestSeed(17);
  SCOPED_TRACE(SeedNote(seed));
  struct Run {
    Dataset data;
    double eps;
    size_t min_pts;
  };
  const Run runs[] = {
      {synth::GeoLifeLike(8000, seed), 2.0, 20},
      {synth::Moons(5000, 0.05, seed + 6), 0.12, 10},
      {synth::Blobs(6000, 8, 1.0, seed + 14), 0.8, 15},
  };
  for (const Run& run : runs) {
    RpDbscanOptions base;
    base.eps = run.eps;
    base.min_pts = run.min_pts;
    base.rho = 0.01;
    base.num_partitions = 12;
    base.num_threads = 4;
    // Both engines run under the full invariant audit; a violation in
    // either pipeline fails the run before the bit-compare below.
    base.audit_level = AuditLevel::kFull;
    RpDbscanOptions sorted = base;
    sorted.sorted_phase1 = true;
    RpDbscanOptions hashed = base;
    hashed.sorted_phase1 = false;
    auto rs = RunRpDbscan(run.data, sorted);
    auto rh = RunRpDbscan(run.data, hashed);
    ASSERT_TRUE(rs.ok()) << rs.status();
    ASSERT_TRUE(rh.ok()) << rh.status();
    EXPECT_EQ(rs->labels, rh->labels);
    EXPECT_EQ(rs->stats.num_cells, rh->stats.num_cells);
    EXPECT_EQ(rs->stats.num_subcells, rh->stats.num_subcells);
    EXPECT_EQ(rs->stats.num_subdictionaries, rh->stats.num_subdictionaries);
    EXPECT_EQ(rs->stats.num_core_cells, rh->stats.num_core_cells);
    EXPECT_EQ(rs->stats.num_clusters, rh->stats.num_clusters);
    EXPECT_EQ(rs->stats.num_noise_points, rh->stats.num_noise_points);
  }
}

TEST(SortedPhase1Test, BreakdownCoversThePartitionPhase) {
  const Dataset ds = synth::GeoLifeLike(20000, 41);
  ThreadPool pool(4);
  auto set =
      CellSet::Build(ds, MakeGeom(3, 1.0), 8, 7, &pool, /*sorted=*/true);
  ASSERT_TRUE(set.ok());
  const Phase1Breakdown& b = set->breakdown();
  EXPECT_TRUE(b.sorted_path_used);
  EXPECT_GE(b.key_seconds, 0.0);
  EXPECT_GE(b.sort_seconds, 0.0);
  EXPECT_GE(b.scatter_seconds, 0.0);
  EXPECT_GT(b.key_seconds + b.sort_seconds + b.scatter_seconds, 0.0);
}

}  // namespace
}  // namespace rpdbscan
