// Property-style parameterized sweeps: RP-DBSCAN must track exact DBSCAN
// across data shapes, eps values, minPts values and rho values — the
// grid behind Table 4 extended into a property test.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "baselines/exact_dbscan.h"
#include "core/rp_dbscan.h"
#include "metrics/rand_index.h"
#include "synth/generators.h"

namespace rpdbscan {
namespace {

enum class Shape { kMoons, kBlobs, kChameleon };

Dataset MakeShape(Shape s, size_t n, uint64_t seed) {
  switch (s) {
    case Shape::kMoons:
      return synth::Moons(n, 0.05, seed);
    case Shape::kBlobs:
      return synth::Blobs(n, 5, 1.0, seed);
    case Shape::kChameleon:
      return synth::ChameleonLike(n, seed);
  }
  return Dataset(2);
}

double EpsFor(Shape s) {
  switch (s) {
    case Shape::kMoons:
      return 0.08;
    case Shape::kBlobs:
      return 1.0;
    case Shape::kChameleon:
      return 1.5;
  }
  return 1.0;
}

using AccuracyParam = std::tuple<Shape, double /*rho*/>;

class AccuracySweep : public ::testing::TestWithParam<AccuracyParam> {};

TEST_P(AccuracySweep, RandIndexAtLeastPaperTable4) {
  const auto [shape, rho] = GetParam();
  const Dataset ds = MakeShape(shape, 3000, 1234);
  RpDbscanOptions o;
  o.eps = EpsFor(shape);
  o.min_pts = 10;
  o.rho = rho;
  o.num_threads = 2;
  o.num_partitions = 6;
  auto rp = RunRpDbscan(ds, o);
  ASSERT_TRUE(rp.ok()) << rp.status();
  auto exact = RunExactDbscan(ds, {o.eps, o.min_pts});
  ASSERT_TRUE(exact.ok());
  auto ri = RandIndex(rp->labels, exact->labels);
  ASSERT_TRUE(ri.ok());
  // Table 4's weakest entry is 0.98 (Chameleon at rho=0.10).
  EXPECT_GE(*ri, 0.98);
  if (rho <= 0.01) {
    EXPECT_GE(*ri, 0.995);
  }
}

std::string AccuracyParamName(
    const ::testing::TestParamInfo<AccuracyParam>& info) {
  const Shape shape = std::get<0>(info.param);
  const double rho = std::get<1>(info.param);
  std::string name;
  switch (shape) {
    case Shape::kMoons:
      name = "Moons";
      break;
    case Shape::kBlobs:
      name = "Blobs";
      break;
    case Shape::kChameleon:
      name = "Chameleon";
      break;
  }
  name += "_rho";
  name += rho == 0.10 ? "10" : (rho == 0.05 ? "05" : "01");
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Table4Grid, AccuracySweep,
    ::testing::Combine(::testing::Values(Shape::kMoons, Shape::kBlobs,
                                         Shape::kChameleon),
                       ::testing::Values(0.10, 0.05, 0.01)),
    AccuracyParamName);

class EpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(EpsSweep, BlobsTrackExactAcrossEps) {
  const double eps = GetParam();
  const Dataset ds = synth::Blobs(2500, 5, 1.0, 99);
  RpDbscanOptions o;
  o.eps = eps;
  o.min_pts = 10;
  o.rho = 0.01;
  o.num_threads = 2;
  auto rp = RunRpDbscan(ds, o);
  ASSERT_TRUE(rp.ok());
  auto exact = RunExactDbscan(ds, {eps, 10});
  ASSERT_TRUE(exact.ok());
  auto ri = RandIndex(rp->labels, exact->labels);
  ASSERT_TRUE(ri.ok());
  EXPECT_GE(*ri, 0.99) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(QuarterToDouble, EpsSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0));

class MinPtsSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(MinPtsSweep, MoonsTrackExactAcrossMinPts) {
  const size_t min_pts = GetParam();
  const Dataset ds = synth::Moons(3000, 0.04, 100);
  RpDbscanOptions o;
  o.eps = 0.08;
  o.min_pts = min_pts;
  o.rho = 0.01;
  o.num_threads = 2;
  auto rp = RunRpDbscan(ds, o);
  ASSERT_TRUE(rp.ok());
  auto exact = RunExactDbscan(ds, {0.08, min_pts});
  ASSERT_TRUE(exact.ok());
  auto ri = RandIndex(rp->labels, exact->labels);
  ASSERT_TRUE(ri.ok());
  EXPECT_GE(*ri, 0.99) << "min_pts=" << min_pts;
}

INSTANTIATE_TEST_SUITE_P(Range, MinPtsSweep,
                         ::testing::Values(2, 5, 10, 20, 40));

class PartitionSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PartitionSweep, ClusteringInvariantToPartitionCount) {
  const size_t parts = GetParam();
  const Dataset ds = synth::Blobs(2000, 4, 1.0, 101);
  RpDbscanOptions o;
  o.eps = 1.0;
  o.min_pts = 12;
  o.num_threads = 2;
  o.num_partitions = parts;
  auto rp = RunRpDbscan(ds, o);
  ASSERT_TRUE(rp.ok());
  RpDbscanOptions ref = o;
  ref.num_partitions = 1;
  auto base = RunRpDbscan(ds, ref);
  ASSERT_TRUE(base.ok());
  auto ri = RandIndex(rp->labels, base->labels);
  ASSERT_TRUE(ri.ok());
  EXPECT_DOUBLE_EQ(*ri, 1.0) << "partitions=" << parts;
}

INSTANTIATE_TEST_SUITE_P(PowersAndOdd, PartitionSweep,
                         ::testing::Values(2, 3, 7, 16, 33));

}  // namespace
}  // namespace rpdbscan
