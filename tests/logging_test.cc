#include "util/logging.h"

#include <gtest/gtest.h>

namespace rpdbscan {
namespace {

TEST(LoggingTest, InfoWarningErrorDoNotAbort) {
  RPDBSCAN_LOG_INFO << "info line " << 1;
  RPDBSCAN_LOG_WARN << "warn line " << 2;
  RPDBSCAN_LOG_ERROR << "error line " << 3;
  SUCCEED();
}

TEST(LoggingTest, CheckPassesOnTrue) {
  RPDBSCAN_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ RPDBSCAN_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, CheckMessageIncludesCondition) {
  EXPECT_DEATH({ RPDBSCAN_CHECK(2 < 1); }, "2 < 1");
}

}  // namespace
}  // namespace rpdbscan
