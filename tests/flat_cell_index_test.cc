#include "core/flat_cell_index.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/cell_coord.h"

namespace rpdbscan {
namespace {

// The index templates only require a `.coord` member, so the tests can
// drive it without building a full CellSet.
struct FakeCell {
  CellCoord coord;
};

CellCoord Coord2(int32_t x, int32_t y) {
  const int32_t c[2] = {x, y};
  return CellCoord(c, 2);
}

TEST(FlatCellIndexTest, DefaultConstructedFindsNothing) {
  const FlatCellIndex index;
  const std::vector<FakeCell> cells;
  EXPECT_EQ(index.Find(Coord2(0, 0), cells), -1);
  EXPECT_EQ(index.capacity(), 0u);
}

TEST(FlatCellIndexTest, EmptyBuildFindsNothing) {
  FlatCellIndex index;
  const std::vector<FakeCell> cells;
  index.Build(cells);
  EXPECT_EQ(index.capacity(), 16u);
  EXPECT_EQ(index.Find(Coord2(3, -7), cells), -1);
}

TEST(FlatCellIndexTest, FindsEveryKeyAndRejectsAbsentOnes) {
  std::vector<FakeCell> cells;
  for (int32_t x = -3; x <= 3; ++x) {
    for (int32_t y = -3; y <= 3; ++y) {
      cells.push_back(FakeCell{Coord2(x, y)});
    }
  }
  FlatCellIndex index;
  index.Build(cells);
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(index.Find(cells[i].coord, cells), static_cast<int64_t>(i));
  }
  EXPECT_EQ(index.Find(Coord2(100, 100), cells), -1);
  EXPECT_EQ(index.Find(Coord2(-4, 0), cells), -1);
}

TEST(FlatCellIndexTest, CollisionChainsProbePastOccupiedSlots) {
  // Engineer keys that all land in one bucket of the initial 16-slot
  // table (mask 15), forcing a linear-probe chain.
  const size_t mask = 15;
  std::vector<FakeCell> colliding;
  const size_t target = Coord2(0, 0).hash() & mask;
  for (int32_t x = 0; colliding.size() < 6; ++x) {
    const CellCoord c = Coord2(x, 0);
    if ((c.hash() & mask) == target) colliding.push_back(FakeCell{c});
  }
  // 6 cells keep the table at its initial 16 slots (16 >= 2 * 6), so the
  // engineered bucket really collides.
  std::vector<FakeCell> cells(colliding.begin(), colliding.begin() + 5);
  FlatCellIndex index;
  index.Build(cells);
  ASSERT_EQ(index.capacity(), 16u);
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(index.Find(cells[i].coord, cells), static_cast<int64_t>(i));
  }
  // Same bucket, never inserted: the probe walks the whole chain and must
  // stop at the first empty slot, not loop or mis-match.
  EXPECT_EQ(index.Find(colliding[5].coord, cells), -1);
}

TEST(FlatCellIndexTest, RebuildGrowsPastLoadFactor) {
  std::vector<FakeCell> cells;
  FlatCellIndex index;
  size_t last_capacity = 0;
  for (int32_t i = 0; i < 300; ++i) {
    cells.push_back(FakeCell{Coord2(i, -i)});
    index.Build(cells);
    // Load factor <= 0.5 at every size, capacity only ever grows.
    EXPECT_GE(index.capacity(), 2 * cells.size());
    EXPECT_EQ(index.capacity() & (index.capacity() - 1), 0u);
    EXPECT_GE(index.capacity(), last_capacity);
    last_capacity = index.capacity();
  }
  EXPECT_GE(index.capacity(), 1024u);  // grew well past the initial 16
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(index.Find(cells[i].coord, cells), static_cast<int64_t>(i));
  }
  EXPECT_EQ(index.Find(Coord2(300, -300), cells), -1);
}

TEST(FlatCellIndexTest, MaxDimensionalKeys) {
  // kMaxDim-wide coordinates with extreme values: the hash must separate
  // keys that differ in any single lane.
  std::vector<FakeCell> cells;
  for (int32_t v = 0; v < 64; ++v) {
    int32_t c[CellCoord::kMaxDim];
    for (size_t d = 0; d < CellCoord::kMaxDim; ++d) {
      c[d] = (d % 2 == 0 ? 1 : -1) * (INT32_MAX - v - static_cast<int32_t>(d));
    }
    cells.push_back(FakeCell{CellCoord(c, CellCoord::kMaxDim)});
  }
  FlatCellIndex index;
  index.Build(cells);
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(index.Find(cells[i].coord, cells), static_cast<int64_t>(i));
  }
  int32_t absent[CellCoord::kMaxDim] = {};
  EXPECT_EQ(index.Find(CellCoord(absent, CellCoord::kMaxDim), cells), -1);
}

}  // namespace
}  // namespace rpdbscan
