#include "util/reservoir.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace rpdbscan {
namespace {

TEST(ReservoirSampleTest, SampleSizeAndRange) {
  Rng rng(1);
  const auto s = ReservoirSample(1000, 50, rng);
  EXPECT_EQ(s.size(), 50u);
  std::set<uint32_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 50u);
  for (const uint32_t v : s) EXPECT_LT(v, 1000u);
}

TEST(ReservoirSampleTest, KGreaterThanNReturnsAll) {
  Rng rng(2);
  const auto s = ReservoirSample(10, 100, rng);
  EXPECT_EQ(s.size(), 10u);
}

TEST(ReservoirSampleTest, KZero) {
  Rng rng(3);
  EXPECT_TRUE(ReservoirSample(100, 0, rng).empty());
}

TEST(ReservoirSampleTest, IsApproximatelyUniform) {
  // Each of 20 items should be picked ~ k/n = 1/4 of the time.
  std::vector<int> hits(20, 0);
  Rng rng(4);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (const uint32_t v : ReservoirSample(20, 5, rng)) ++hits[v];
  }
  for (const int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.25, 0.02);
  }
}

TEST(RandomDisjointSplitTest, PartitionsExactly) {
  Rng rng(5);
  const auto splits = RandomDisjointSplit(1003, 7, rng);
  ASSERT_EQ(splits.size(), 7u);
  std::set<uint32_t> seen;
  for (const auto& part : splits) {
    for (const uint32_t v : part) {
      EXPECT_TRUE(seen.insert(v).second) << "duplicate " << v;
    }
  }
  EXPECT_EQ(seen.size(), 1003u);
}

TEST(RandomDisjointSplitTest, NearEqualSizes) {
  Rng rng(6);
  const auto splits = RandomDisjointSplit(1000, 8, rng);
  for (const auto& part : splits) {
    EXPECT_GE(part.size(), 125u - 1);
    EXPECT_LE(part.size(), 125u + 1);
  }
}

TEST(RandomDisjointSplitTest, ZeroSplitsClampedToOne) {
  Rng rng(7);
  const auto splits = RandomDisjointSplit(10, 0, rng);
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0].size(), 10u);
}

TEST(RandomDisjointSplitTest, SplitsAreShuffled) {
  Rng rng(8);
  const auto splits = RandomDisjointSplit(1000, 2, rng);
  // The first split must not simply be [0, 500).
  std::vector<uint32_t> sorted = splits[0];
  std::sort(sorted.begin(), sorted.end());
  bool contiguous = true;
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    if (sorted[i + 1] != sorted[i] + 1) {
      contiguous = false;
      break;
    }
  }
  EXPECT_FALSE(contiguous);
}

}  // namespace
}  // namespace rpdbscan
