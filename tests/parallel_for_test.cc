#include "parallel/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace rpdbscan {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(pool, 0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleElement) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  ParallelFor(pool, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  ParallelFor(pool, 5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  const std::vector<int> expect = {0, 1, 2, 3, 4};
  EXPECT_EQ(order, expect);  // inline path preserves order
}

TEST(ParallelForTest, SumMatchesSerial) {
  ThreadPool pool(3);
  const size_t n = 10000;
  std::atomic<long long> sum{0};
  ParallelFor(pool, n, [&](size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n * (n - 1) / 2));
}

TEST(ParallelForTest, ExplicitChunkSize) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(97);
  ParallelFor(pool, hits.size(), [&](size_t i) { hits[i].fetch_add(1); },
              /*chunk=*/5);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace rpdbscan
