// Tests for the src/verify invariant auditors: AuditReport mechanics, the
// acceptance-criterion "deliberately corrupted CSR is caught", tampered
// pipeline outputs being rejected stage by stage, and a clean pipeline
// passing every auditor at kFull — both standalone and through
// RpDbscanOptions::audit_level.

#include "verify/audit.h"

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/labeling.h"
#include "core/phase2.h"
#include "core/rp_dbscan.h"
#include "synth/generators.h"

namespace rpdbscan {
namespace {

// ---------------------------------------------------------------------------
// AuditReport mechanics.

TEST(AuditReportTest, CountsChecksAndViolations) {
  AuditReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.checks(), 0u);
  report.Check(true, [] { return "never"; });
  report.Check(false, [] { return "bad thing"; });
  report.Fail("worse thing");
  EXPECT_EQ(report.checks(), 3u);
  EXPECT_EQ(report.violations(), 2u);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.messages().size(), 2u);
  EXPECT_EQ(report.messages()[0], "bad thing");
  EXPECT_EQ(report.messages()[1], "worse thing");
}

TEST(AuditReportTest, MessageFormattingIsLazy) {
  AuditReport report;
  bool formatted = false;
  report.Check(true, [&] {
    formatted = true;
    return "unused";
  });
  EXPECT_FALSE(formatted);
  report.Check(false, [&] {
    formatted = true;
    return "used";
  });
  EXPECT_TRUE(formatted);
}

TEST(AuditReportTest, RetainsAtMostMaxMessages) {
  AuditReport report;
  for (size_t i = 0; i < 3 * AuditReport::kMaxMessages; ++i) {
    report.Fail("violation " + std::to_string(i));
  }
  EXPECT_EQ(report.violations(), 3 * AuditReport::kMaxMessages);
  EXPECT_EQ(report.messages().size(), AuditReport::kMaxMessages);
}

TEST(AuditReportTest, MergeFoldsCounters) {
  AuditReport a;
  a.Check(true, [] { return ""; });
  AuditReport b;
  b.Fail("sub-stage violation");
  b.Check(true, [] { return ""; });
  a.Merge(b);
  EXPECT_EQ(a.checks(), 3u);
  EXPECT_EQ(a.violations(), 1u);
  ASSERT_EQ(a.messages().size(), 1u);
  EXPECT_EQ(a.messages()[0], "sub-stage violation");
}

TEST(AuditReportTest, ToStatusCarriesStageAndMessages) {
  AuditReport clean;
  clean.Check(true, [] { return ""; });
  EXPECT_TRUE(clean.ToStatus("cell-set").ok());

  AuditReport broken;
  broken.Fail("offsets not monotone");
  const Status st = broken.ToStatus("cell-set");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cell-set"), std::string::npos);
  EXPECT_NE(st.message().find("offsets not monotone"), std::string::npos);
  EXPECT_FALSE(broken.ToString().empty());
}

// ---------------------------------------------------------------------------
// Corrupted CSR arrays (the acceptance-criterion unit test). A healthy
// layout first, then one deliberate corruption per test.

std::vector<uint64_t> HealthyOffsets() { return {0, 3, 5, 8}; }
std::vector<uint32_t> HealthyIds() { return {0, 2, 5, 1, 7, 3, 4, 6}; }

TEST(AuditCsrTest, HealthyLayoutPasses) {
  const AuditReport r = AuditCsrArrays(8, HealthyOffsets(), HealthyIds());
  EXPECT_TRUE(r.ok()) << r.ToString();
  EXPECT_GT(r.checks(), 0u);
}

TEST(AuditCsrTest, CatchesNonMonotoneOffsets) {
  auto offsets = HealthyOffsets();
  offsets[2] = 2;  // goes backwards relative to offsets[1] == 3
  EXPECT_FALSE(AuditCsrArrays(8, offsets, HealthyIds()).ok());
}

TEST(AuditCsrTest, CatchesOffsetsNotStartingAtZero) {
  auto offsets = HealthyOffsets();
  offsets[0] = 1;
  EXPECT_FALSE(AuditCsrArrays(8, offsets, HealthyIds()).ok());
}

TEST(AuditCsrTest, CatchesTruncatedOffsets) {
  // Final offset stops short of num_points: the tail of point_ids is
  // orphaned from every cell.
  auto offsets = HealthyOffsets();
  offsets.back() = 6;
  EXPECT_FALSE(AuditCsrArrays(8, offsets, HealthyIds()).ok());
}

TEST(AuditCsrTest, CatchesEmptyOffsets) {
  EXPECT_FALSE(AuditCsrArrays(8, {}, HealthyIds()).ok());
}

TEST(AuditCsrTest, CatchesDuplicatePointId) {
  auto ids = HealthyIds();
  ids[4] = 3;  // 3 now appears twice, 7 never — permutation broken
  EXPECT_FALSE(AuditCsrArrays(8, HealthyOffsets(), ids).ok());
}

TEST(AuditCsrTest, CatchesOutOfRangePointId) {
  auto ids = HealthyIds();
  ids[0] = 100;
  EXPECT_FALSE(AuditCsrArrays(8, HealthyOffsets(), ids).ok());
}

TEST(AuditCsrTest, CatchesDescendingIdsWithinCell) {
  auto ids = HealthyIds();
  std::swap(ids[0], ids[1]);  // cell 0 becomes {2, 0, 5}
  EXPECT_FALSE(AuditCsrArrays(8, HealthyOffsets(), ids).ok());
}

TEST(AuditCsrTest, CatchesPointIdsSizeMismatch) {
  auto ids = HealthyIds();
  ids.pop_back();
  EXPECT_FALSE(AuditCsrArrays(8, HealthyOffsets(), ids).ok());
}

// ---------------------------------------------------------------------------
// Whole-pipeline fixtures: run the real stages on a small blob data set,
// audit the genuine outputs, then tamper with the (public) result structs
// and expect each stage auditor to object.

constexpr double kEps = 1.0;
constexpr double kRho = 0.05;
constexpr size_t kMinPts = 10;

struct Pipeline {
  Dataset data;
  CellSet cells;
  CellDictionary dict;
  Phase2Result phase2;
  MergeResult merged;
  Labels labels;
};

Pipeline MakePipeline() {
  Dataset data = synth::Blobs(1200, 3, 1.0, 42);
  auto geom = GridGeometry::Create(data.dim(), kEps, kRho);
  EXPECT_TRUE(geom.ok()) << geom.status();
  auto cells = CellSet::Build(data, *geom, 4, 7);
  EXPECT_TRUE(cells.ok()) << cells.status();
  CellDictionaryOptions dict_opts;
  dict_opts.max_cells_per_subdict = 32;  // force several sub-dictionaries
  auto dict = CellDictionary::Build(data, *cells, dict_opts);
  EXPECT_TRUE(dict.ok()) << dict.status();
  ThreadPool pool(2);
  Phase2Result phase2 =
      BuildSubgraphs(data, *cells, *dict, kMinPts, pool, Phase2Options());
  std::vector<CellSubgraph> subgraphs = phase2.subgraphs;  // merge consumes
  MergeOptions merge_opts;
  merge_opts.pool = &pool;
  MergeResult merged =
      MergeSubgraphs(std::move(subgraphs), cells->num_cells(), merge_opts);
  Labels labels =
      LabelPoints(data, *cells, merged, phase2.point_is_core, pool);
  return Pipeline{std::move(data),       std::move(cells).value(),
                  std::move(dict).value(), std::move(phase2),
                  std::move(merged),     std::move(labels)};
}

TEST(PipelineAuditTest, CleanPipelinePassesEveryAuditorAtFull) {
  const Pipeline p = MakePipeline();
  const AuditReport cell_set = AuditCellSet(p.data, p.cells, AuditLevel::kFull);
  EXPECT_TRUE(cell_set.ok()) << cell_set.ToString();
  EXPECT_GT(cell_set.checks(), 0u);
  const AuditReport dict =
      AuditDictionary(p.data, p.cells, p.dict, AuditLevel::kFull);
  EXPECT_TRUE(dict.ok()) << dict.ToString();
  EXPECT_GT(dict.checks(), 0u);
  const AuditReport graph =
      AuditCellGraph(p.data, p.cells, p.phase2, AuditLevel::kFull);
  EXPECT_TRUE(graph.ok()) << graph.ToString();
  EXPECT_GT(graph.checks(), 0u);
  const AuditReport forest =
      AuditMergeForest(p.phase2.cell_is_core, p.merged, AuditLevel::kFull);
  EXPECT_TRUE(forest.ok()) << forest.ToString();
  EXPECT_GT(forest.checks(), 0u);
  const AuditReport labels =
      AuditLabels(p.data, p.cells, p.merged, p.phase2.point_is_core, p.labels,
                  kMinPts, AuditLevel::kFull, /*seed=*/1);
  EXPECT_TRUE(labels.ok()) << labels.ToString();
  EXPECT_GT(labels.checks(), 0u);
}

TEST(PipelineAuditTest, CleanPipelinePassesAtCheap) {
  const Pipeline p = MakePipeline();
  EXPECT_TRUE(AuditCellSet(p.data, p.cells, AuditLevel::kCheap).ok());
  EXPECT_TRUE(AuditDictionary(p.data, p.cells, p.dict, AuditLevel::kCheap).ok());
  EXPECT_TRUE(AuditCellGraph(p.data, p.cells, p.phase2, AuditLevel::kCheap).ok());
  EXPECT_TRUE(
      AuditMergeForest(p.phase2.cell_is_core, p.merged, AuditLevel::kCheap).ok());
  EXPECT_TRUE(AuditLabels(p.data, p.cells, p.merged, p.phase2.point_is_core,
                          p.labels, kMinPts, AuditLevel::kCheap, 1)
                  .ok());
}

// Returns the dense id of some core cell (the fixture's blobs always
// produce one).
uint32_t AnyCoreCell(const Pipeline& p) {
  for (uint32_t c = 0; c < p.phase2.cell_is_core.size(); ++c) {
    if (p.phase2.cell_is_core[c]) return c;
  }
  ADD_FAILURE() << "fixture produced no core cell";
  return 0;
}

TEST(PipelineAuditTest, CatchesSelfLoopEdge) {
  Pipeline p = MakePipeline();
  const uint32_t c = AnyCoreCell(p);
  CellSubgraph& g = p.phase2.subgraphs[p.cells.cell(c).owner_partition];
  g.edges.push_back(CellEdge{c, c, EdgeType::kUndetermined});
  EXPECT_FALSE(AuditCellGraph(p.data, p.cells, p.phase2, AuditLevel::kCheap).ok());
}

TEST(PipelineAuditTest, CatchesEdgeFromNonCoreCell) {
  Pipeline p = MakePipeline();
  uint32_t non_core = UINT32_MAX;
  for (uint32_t c = 0; c < p.phase2.cell_is_core.size(); ++c) {
    if (!p.phase2.cell_is_core[c]) {
      non_core = c;
      break;
    }
  }
  ASSERT_NE(non_core, UINT32_MAX) << "fixture produced no non-core cell";
  const uint32_t other = AnyCoreCell(p);
  CellSubgraph& g =
      p.phase2.subgraphs[p.cells.cell(non_core).owner_partition];
  g.edges.push_back(CellEdge{non_core, other, EdgeType::kUndetermined});
  EXPECT_FALSE(AuditCellGraph(p.data, p.cells, p.phase2, AuditLevel::kCheap).ok());
}

TEST(PipelineAuditTest, CatchesGeometricallyImpossibleEdge) {
  Pipeline p = MakePipeline();
  const uint32_t from = AnyCoreCell(p);
  // Find the cell farthest from `from` along dimension 0: with three
  // separated blobs it is many cells away, far beyond the (1+rho)eps reach.
  const CellCoord& origin = p.cells.cell(from).coord;
  uint32_t far = from;
  int64_t best = 0;
  for (uint32_t c = 0; c < p.cells.num_cells(); ++c) {
    const int64_t d = static_cast<int64_t>(p.cells.cell(c).coord[0]) -
                      static_cast<int64_t>(origin[0]);
    const int64_t abs_d = d < 0 ? -d : d;
    if (abs_d > best) {
      best = abs_d;
      far = c;
    }
  }
  ASSERT_GT(best, 4) << "fixture cells not spread enough for this test";
  CellSubgraph& g = p.phase2.subgraphs[p.cells.cell(from).owner_partition];
  g.edges.push_back(CellEdge{from, far, EdgeType::kUndetermined});
  EXPECT_FALSE(AuditCellGraph(p.data, p.cells, p.phase2, AuditLevel::kCheap).ok());
}

TEST(PipelineAuditTest, CatchesDuplicateEdgeAtFullOnly) {
  Pipeline p = MakePipeline();
  CellSubgraph* with_edges = nullptr;
  for (CellSubgraph& g : p.phase2.subgraphs) {
    if (!g.edges.empty()) {
      with_edges = &g;
      break;
    }
  }
  ASSERT_NE(with_edges, nullptr);
  with_edges->edges.push_back(with_edges->edges.front());
  EXPECT_FALSE(AuditCellGraph(p.data, p.cells, p.phase2, AuditLevel::kFull).ok());
}

TEST(PipelineAuditTest, CatchesCoreCellWithoutCluster) {
  Pipeline p = MakePipeline();
  p.merged.core_cluster[AnyCoreCell(p)] = kNoCluster;
  EXPECT_FALSE(
      AuditMergeForest(p.phase2.cell_is_core, p.merged, AuditLevel::kCheap).ok());
}

TEST(PipelineAuditTest, CatchesCycleInReducedFullEdges) {
  Pipeline p = MakePipeline();
  ASSERT_TRUE(p.merged.edges_reduced);
  ASSERT_FALSE(p.merged.full_edges.empty())
      << "fixture produced no multi-cell cluster";
  // Duplicating a spanning-forest edge creates a cycle: the second union
  // is not novel, and the #clusters == #core − #edges accounting breaks.
  p.merged.full_edges.push_back(p.merged.full_edges.front());
  EXPECT_FALSE(
      AuditMergeForest(p.phase2.cell_is_core, p.merged, AuditLevel::kCheap).ok());
}

TEST(PipelineAuditTest, CatchesIncreasingEdgeSeries) {
  Pipeline p = MakePipeline();
  ASSERT_GE(p.merged.edges_per_round.size(), 2u);
  p.merged.edges_per_round.back() = p.merged.edges_per_round.front() + 1000;
  EXPECT_FALSE(
      AuditMergeForest(p.phase2.cell_is_core, p.merged, AuditLevel::kCheap).ok());
}

TEST(PipelineAuditTest, CatchesPredecessorOnCoreCell) {
  Pipeline p = MakePipeline();
  const uint32_t core = AnyCoreCell(p);
  p.merged.predecessors[core].push_back(core);
  EXPECT_FALSE(
      AuditMergeForest(p.phase2.cell_is_core, p.merged, AuditLevel::kCheap).ok());
}

TEST(PipelineAuditTest, CatchesCorePointLabeledNoise) {
  Pipeline p = MakePipeline();
  const uint32_t core_cell = AnyCoreCell(p);
  const uint32_t pid = p.cells.cell(core_cell).point_ids[0];
  p.labels[pid] = kNoise;
  EXPECT_FALSE(AuditLabels(p.data, p.cells, p.merged, p.phase2.point_is_core,
                           p.labels, kMinPts, AuditLevel::kCheap, 1)
                   .ok());
}

TEST(PipelineAuditTest, CatchesOutOfRangeClusterLabel) {
  Pipeline p = MakePipeline();
  p.labels[0] = static_cast<int64_t>(p.merged.num_clusters) + 5;
  EXPECT_FALSE(AuditLabels(p.data, p.cells, p.merged, p.phase2.point_is_core,
                           p.labels, kMinPts, AuditLevel::kCheap, 1)
                   .ok());
}

TEST(PipelineAuditTest, SandwichSpotCheckCatchesFabricatedNoise) {
  // Rewrite a dense core cell into a structurally self-consistent lie:
  // the cell becomes non-core with no predecessors, its points lose their
  // core flags and become noise. Every structural label check then agrees
  // with the tampered state — only the kd-tree ground-truth spot check
  // (Theorem 5.4: a noise point must have < minPts exact neighbors at
  // (1 - rho/2) eps) can expose the fake noise.
  Pipeline p = MakePipeline();
  // Pick the most populous core cell that is nobody's predecessor, so the
  // tamper does not ripple into other cells' label re-derivation.
  uint32_t victim = UINT32_MAX;
  size_t best_points = 0;
  for (uint32_t c = 0; c < p.phase2.cell_is_core.size(); ++c) {
    if (!p.phase2.cell_is_core[c]) continue;
    bool is_pred = false;
    for (const std::vector<uint32_t>& preds : p.merged.predecessors) {
      for (const uint32_t pred : preds) {
        if (pred == c) is_pred = true;
      }
    }
    if (is_pred) continue;
    if (p.cells.cell(c).point_ids.size() > best_points) {
      best_points = p.cells.cell(c).point_ids.size();
      victim = c;
    }
  }
  ASSERT_NE(victim, UINT32_MAX) << "every core cell is a predecessor";
  ASSERT_GE(best_points, kMinPts) << "densest eligible core cell too sparse";
  p.merged.core_cluster[victim] = kNoCluster;
  p.merged.predecessors[victim].clear();
  for (const uint32_t pid : p.cells.cell(victim).point_ids) {
    p.labels[pid] = kNoise;
    p.phase2.point_is_core[pid] = 0;
  }
  // kFull draws 256 noise samples (with replacement); the fabricated noise
  // dominates the genuine noise pool on this small data set, so the dense
  // fakes are sampled — and rejected — deterministically under this seed.
  const AuditReport r =
      AuditLabels(p.data, p.cells, p.merged, p.phase2.point_is_core, p.labels,
                  kMinPts, AuditLevel::kFull, /*seed=*/3);
  EXPECT_FALSE(r.ok());
  bool sandwich_message = false;
  for (const std::string& m : r.messages()) {
    if (m.find("exact neighbors") != std::string::npos) {
      sandwich_message = true;
    }
  }
  EXPECT_TRUE(sandwich_message) << r.ToString();
}

// ---------------------------------------------------------------------------
// End-to-end wiring through RpDbscanOptions::audit_level.

RpDbscanOptions AuditOpts(AuditLevel level) {
  RpDbscanOptions o;
  o.eps = kEps;
  o.min_pts = kMinPts;
  o.rho = kRho;
  o.num_threads = 2;
  o.num_partitions = 4;
  o.audit_level = level;
  return o;
}

TEST(RpDbscanAuditTest, FullAuditRunsCleanAndPopulatesStats) {
  const Dataset ds = synth::Blobs(1500, 3, 1.0, 77);
  auto r = RunRpDbscan(ds, AuditOpts(AuditLevel::kFull));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->stats.audit_checks, 0u);
  EXPECT_EQ(r->stats.audit_violations, 0u);
  EXPECT_GE(r->stats.audit_seconds, 0.0);
  EXPECT_NE(r->stats.ToString().find("audit:"), std::string::npos);
}

TEST(RpDbscanAuditTest, CheapAuditRunsClean) {
  const Dataset ds = synth::Blobs(1500, 3, 1.0, 78);
  auto r = RunRpDbscan(ds, AuditOpts(AuditLevel::kCheap));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->stats.audit_checks, 0u);
  EXPECT_EQ(r->stats.audit_violations, 0u);
}

TEST(RpDbscanAuditTest, OffMeansZeroChecks) {
  const Dataset ds = synth::Blobs(800, 2, 1.0, 79);
  auto r = RunRpDbscan(ds, AuditOpts(AuditLevel::kOff));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->stats.audit_checks, 0u);
  EXPECT_EQ(r->stats.ToString().find("audit:"), std::string::npos);
}

TEST(RpDbscanAuditTest, AuditDoesNotChangeLabels) {
  const Dataset ds = synth::Blobs(1200, 3, 1.0, 80);
  auto off = RunRpDbscan(ds, AuditOpts(AuditLevel::kOff));
  auto full = RunRpDbscan(ds, AuditOpts(AuditLevel::kFull));
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(off->labels, full->labels);
}

}  // namespace
}  // namespace rpdbscan
