#include "io/svg_scatter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "synth/generators.h"

namespace rpdbscan {
namespace {

class SvgScatterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/svg_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".svg";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string ReadAll() {
    std::ifstream in(path_);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  std::string path_;
};

TEST_F(SvgScatterTest, WritesWellFormedSvg) {
  Dataset ds(2);
  ds.Append({0, 0});
  ds.Append({1, 1});
  ds.Append({2, 0});
  const Labels labels = {0, 0, kNoise};
  ASSERT_TRUE(WriteSvgScatter(path_, ds, labels).ok());
  const std::string svg = ReadAll();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One circle per point.
  size_t circles = 0;
  for (size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
       ++pos) {
    ++circles;
  }
  EXPECT_EQ(circles, 3u);
  // Noise color present.
  EXPECT_NE(svg.find("#bbbbbb"), std::string::npos);
}

TEST_F(SvgScatterTest, TitleRendered) {
  Dataset ds(2);
  ds.Append({0, 0});
  const Labels labels = {0};
  SvgScatterOptions opts;
  opts.title = "moons";
  ASSERT_TRUE(WriteSvgScatter(path_, ds, labels, opts).ok());
  EXPECT_NE(ReadAll().find(">moons</text>"), std::string::npos);
}

TEST_F(SvgScatterTest, SelectsDimensions) {
  Dataset ds(3);
  ds.Append({1, 2, 3});
  ds.Append({4, 5, 6});
  const Labels labels = {0, 1};
  SvgScatterOptions opts;
  opts.dim_x = 1;
  opts.dim_y = 2;
  EXPECT_TRUE(WriteSvgScatter(path_, ds, labels, opts).ok());
  opts.dim_y = 3;  // out of range
  EXPECT_FALSE(WriteSvgScatter(path_, ds, labels, opts).ok());
}

TEST_F(SvgScatterTest, RejectsBadInputs) {
  Dataset ds(2);
  ds.Append({0, 0});
  const Labels wrong_size = {0, 1};
  EXPECT_FALSE(WriteSvgScatter(path_, ds, wrong_size).ok());
  const Dataset empty(2);
  EXPECT_FALSE(WriteSvgScatter(path_, empty, {}).ok());
  const Labels one = {0};
  SvgScatterOptions opts;
  opts.width = 0;
  EXPECT_FALSE(WriteSvgScatter(path_, ds, one, opts).ok());
}

TEST_F(SvgScatterTest, LargeDatasetAllPointsEmitted) {
  const Dataset ds = synth::Moons(2000, 0.05, 9);
  Labels labels(ds.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int64_t>(i % 5) - 1;  // includes noise (-1)
  }
  ASSERT_TRUE(WriteSvgScatter(path_, ds, labels).ok());
  const std::string svg = ReadAll();
  size_t circles = 0;
  for (size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
       ++pos) {
    ++circles;
  }
  EXPECT_EQ(circles, ds.size());
}

}  // namespace
}  // namespace rpdbscan
