// Property tests for the streaming ingest path (IngestBuffer /
// CellSet::IngestAppended): every append must leave the cell structures
// BIT-IDENTICAL to a from-scratch CellSet::Build over the accumulated
// points — ids, CSR arrays, partition assignment, everything — including
// under empty batches, duplicate points, cell-overflow into sub-cells,
// and batches that extend the lattice bounds (the key re-encode
// regression: the old layout would silently wrap out-of-bounds offsets
// onto aliased keys). Invariants are double-checked by the kFull
// auditors, and the dictionary assembled from cached per-cell entries
// must serialize byte-identically to one built from scratch.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/cell_dictionary.h"
#include "core/cell_set.h"
#include "core/grid.h"
#include "io/dataset.h"
#include "parallel/thread_pool.h"
#include "stream/ingest_buffer.h"
#include "util/random.h"
#include "verify/audit.h"
#include "test_seed.h"

namespace rpdbscan {
namespace {

constexpr size_t kPartitions = 8;

Dataset RandomData(size_t n, size_t dim, uint64_t seed, double lo,
                   double hi) {
  Rng rng(seed);
  Dataset data(dim);
  data.Reserve(n);
  std::vector<float> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = static_cast<float>(rng.UniformDouble(lo, hi));
    data.Append(p.data());
  }
  return data;
}

void AppendAll(const Dataset& src, Dataset* dst) {
  dst->Reserve(dst->size() + src.size());
  for (size_t i = 0; i < src.size(); ++i) dst->Append(src.point(i));
}

/// The bit-identity oracle: every observable of the incrementally grown
/// set must equal a from-scratch Build over the same accumulated data.
void ExpectSameCellSet(const CellSet& got, const CellSet& want) {
  ASSERT_EQ(got.num_cells(), want.num_cells());
  ASSERT_EQ(got.num_points(), want.num_points());
  ASSERT_EQ(got.num_partitions(), want.num_partitions());
  EXPECT_EQ(got.cell_point_offsets(), want.cell_point_offsets());
  EXPECT_EQ(got.point_ids(), want.point_ids());
  for (uint32_t id = 0; id < got.num_cells(); ++id) {
    SCOPED_TRACE("cell " + std::to_string(id));
    ASSERT_TRUE(got.cell(id).coord == want.cell(id).coord);
    ASSERT_EQ(got.cell(id).owner_partition, want.cell(id).owner_partition);
  }
  for (uint32_t pid = 0; pid < got.num_partitions(); ++pid) {
    SCOPED_TRACE("partition " + std::to_string(pid));
    EXPECT_EQ(got.partition(pid), want.partition(pid));
    EXPECT_EQ(got.PartitionPoints(pid), want.PartitionPoints(pid));
  }
}

/// Replays `batches` through IngestAppended (engine `sorted`) and checks
/// after every append: kFull cell-set audit, bit-identity with a
/// from-scratch Build, a correct touched set, and byte-identical
/// dictionaries between the cached-entry path and a scratch Build.
void ReplayAndCheck(const GridGeometry& geom, const Dataset& seed_batch,
                    const std::vector<Dataset>& batches, uint64_t seed,
                    bool sorted) {
  SCOPED_TRACE(sorted ? "sorted engine" : "hash engine");
  ThreadPool pool(2);
  Dataset accumulated(seed_batch.dim());
  AppendAll(seed_batch, &accumulated);
  auto grown_or = CellSet::Build(accumulated, geom, kPartitions, seed,
                                 &pool, sorted);
  ASSERT_TRUE(grown_or.ok()) << grown_or.status();
  CellSet grown = std::move(*grown_or);

  for (size_t b = 0; b < batches.size(); ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    const size_t first_new = accumulated.size();
    AppendAll(batches[b], &accumulated);
    std::vector<uint32_t> touched;
    const Status s =
        grown.IngestAppended(accumulated, first_new, &pool, &touched);
    ASSERT_TRUE(s.ok()) << s;

    const AuditReport report =
        AuditCellSet(accumulated, grown, AuditLevel::kFull);
    ASSERT_TRUE(report.ok()) << report.ToString();

    auto scratch_or = CellSet::Build(accumulated, geom, kPartitions, seed,
                                     &pool, sorted);
    ASSERT_TRUE(scratch_or.ok()) << scratch_or.status();
    ExpectSameCellSet(grown, *scratch_or);

    // The touched set is exactly the cells the batch's points land in:
    // ascending, duplicate-free, nothing else.
    std::vector<uint32_t> want_touched;
    for (size_t i = first_new; i < accumulated.size(); ++i) {
      const int64_t id = grown.FindCell(geom.CellOf(accumulated.point(i)));
      ASSERT_GE(id, 0);
      want_touched.push_back(static_cast<uint32_t>(id));
    }
    std::sort(want_touched.begin(), want_touched.end());
    want_touched.erase(
        std::unique(want_touched.begin(), want_touched.end()),
        want_touched.end());
    EXPECT_EQ(touched, want_touched);

    // Dictionary: cached per-cell entries (the stream path) must yield
    // the same wire bytes as a full Build over the accumulated data.
    CellDictionaryOptions dopts;
    dopts.build_stencil = true;
    auto scratch_dict_or =
        CellDictionary::Build(accumulated, grown, dopts, &pool);
    ASSERT_TRUE(scratch_dict_or.ok()) << scratch_dict_or.status();
    std::vector<CellEntry> entries(grown.num_cells());
    for (uint32_t id = 0; id < grown.num_cells(); ++id) {
      entries[id] = CellDictionary::MakeCellEntry(accumulated, geom,
                                                  grown.cell(id), id);
    }
    auto entry_dict_or = CellDictionary::FromEntries(
        geom, std::move(entries), dopts, &pool);
    ASSERT_TRUE(entry_dict_or.ok()) << entry_dict_or.status();
    EXPECT_EQ(entry_dict_or->Serialize(), scratch_dict_or->Serialize());
    const AuditReport dict_report = AuditDictionary(
        accumulated, grown, *entry_dict_or, AuditLevel::kFull);
    ASSERT_TRUE(dict_report.ok()) << dict_report.ToString();
  }
}

StatusOr<GridGeometry> Geom(size_t dim) {
  return GridGeometry::Create(dim, /*eps=*/2.0, /*rho=*/0.01);
}

TEST(IngestBufferTest, RandomBatchesStayIdenticalToScratchBuild) {
  const uint64_t seed = TestSeed(0x16e57);
  SCOPED_TRACE(SeedNote(seed));
  for (const size_t dim : {size_t{2}, size_t{3}}) {
    SCOPED_TRACE("dim=" + std::to_string(dim));
    auto geom = Geom(dim);
    ASSERT_TRUE(geom.ok());
    const Dataset seed_batch = RandomData(400, dim, seed, 0.0, 30.0);
    std::vector<Dataset> batches;
    for (size_t b = 0; b < 4; ++b) {
      batches.push_back(
          RandomData(60 + 30 * b, dim, seed + 1 + b, 0.0, 30.0));
    }
    ReplayAndCheck(*geom, seed_batch, batches, seed, /*sorted=*/true);
    ReplayAndCheck(*geom, seed_batch, batches, seed, /*sorted=*/false);
  }
}

TEST(IngestBufferTest, EmptyBatchIsANoOp) {
  const uint64_t seed = TestSeed(0xe3b7);
  SCOPED_TRACE(SeedNote(seed));
  auto geom = Geom(2);
  ASSERT_TRUE(geom.ok());
  const Dataset seed_batch = RandomData(200, 2, seed, 0.0, 20.0);
  std::vector<Dataset> batches;
  batches.emplace_back(2);  // empty
  batches.push_back(RandomData(50, 2, seed + 1, 0.0, 20.0));
  batches.emplace_back(2);  // empty again, after growth
  ReplayAndCheck(*geom, seed_batch, batches, seed, /*sorted=*/true);
}

TEST(IngestBufferTest, DuplicatePointsAppendInOrder) {
  const uint64_t seed = TestSeed(0xd0bb1e);
  SCOPED_TRACE(SeedNote(seed));
  auto geom = Geom(2);
  ASSERT_TRUE(geom.ok());
  const Dataset seed_batch = RandomData(150, 2, seed, 0.0, 15.0);
  // Batch 1: exact copies of existing points (every cell it touches
  // already exists). Batch 2: the same batch AGAIN — duplicates of
  // duplicates.
  Dataset dupes(2);
  for (size_t i = 0; i < seed_batch.size(); i += 3) {
    dupes.Append(seed_batch.point(i));
  }
  std::vector<Dataset> batches;
  Dataset d1(2), d2(2);
  AppendAll(dupes, &d1);
  AppendAll(dupes, &d2);
  batches.push_back(std::move(d1));
  batches.push_back(std::move(d2));
  ReplayAndCheck(*geom, seed_batch, batches, seed, /*sorted=*/true);
  ReplayAndCheck(*geom, seed_batch, batches, seed, /*sorted=*/false);
}

/// Cell overflow into sub-cells: a hot cell keeps absorbing points that
/// spread over many rho-subcells, so its dictionary entry (the subcell
/// histogram) must be rebuilt correctly every epoch while its cell id
/// stays fixed.
TEST(IngestBufferTest, HotCellOverflowsIntoSubcells) {
  const uint64_t seed = TestSeed(0x5ebce11);
  SCOPED_TRACE(SeedNote(seed));
  auto geom = Geom(2);
  ASSERT_TRUE(geom.ok());
  // Cell side is eps/sqrt(dim) ~ 1.41: keep the hot points inside
  // [0.1, 1.3]^2 — one cell — while a sparse background fills others.
  Dataset seed_batch = RandomData(80, 2, seed, 3.0, 40.0);
  AppendAll(RandomData(50, 2, seed + 1, 0.1, 1.3), &seed_batch);
  std::vector<Dataset> batches;
  for (size_t b = 0; b < 3; ++b) {
    batches.push_back(RandomData(120, 2, seed + 2 + b, 0.1, 1.3));
  }
  ReplayAndCheck(*geom, seed_batch, batches, seed, /*sorted=*/true);
}

/// Regression for the latent lattice-bounds assumption: before the
/// re-key fix, a batch point outside the build-time bounds was encoded
/// with the frozen key layout, silently wrapping onto an aliased key
/// (wrong grouping, corrupted cells). Now it must trigger exactly one
/// layout rebuild per offending batch and stay bit-identical to scratch.
TEST(IngestBufferTest, OutOfBoundsBatchRekeysInsteadOfWrapping) {
  const uint64_t seed = TestSeed(0x00b5);
  SCOPED_TRACE(SeedNote(seed));
  auto geom = Geom(2);
  ASSERT_TRUE(geom.ok());
  ThreadPool pool(2);
  Dataset accumulated = RandomData(300, 2, seed, 0.0, 10.0);
  auto grown_or =
      CellSet::Build(accumulated, *geom, kPartitions, seed, &pool);
  ASSERT_TRUE(grown_or.ok()) << grown_or.status();
  CellSet grown = std::move(*grown_or);
  ASSERT_EQ(grown.rekeys(), 0u);

  // Batch 1: far outside the seed's bounding box, both directions.
  size_t first_new = accumulated.size();
  AppendAll(RandomData(40, 2, seed + 1, -900.0, -600.0), &accumulated);
  const float far[2] = {4000.0f, 4000.0f};
  accumulated.Append(far);
  ASSERT_TRUE(grown.IngestAppended(accumulated, first_new, &pool).ok());
  EXPECT_EQ(grown.rekeys(), 1u);

  // Batch 2: inside the (now extended) bounds — no further re-key.
  first_new = accumulated.size();
  AppendAll(RandomData(40, 2, seed + 2, 0.0, 10.0), &accumulated);
  ASSERT_TRUE(grown.IngestAppended(accumulated, first_new, &pool).ok());
  EXPECT_EQ(grown.rekeys(), 1u);

  // Batch 3: beyond even the extended bounds — re-keys again.
  first_new = accumulated.size();
  const float farther[2] = {-50000.0f, 80000.0f};
  accumulated.Append(farther);
  ASSERT_TRUE(grown.IngestAppended(accumulated, first_new, &pool).ok());
  EXPECT_EQ(grown.rekeys(), 2u);

  const AuditReport report =
      AuditCellSet(accumulated, grown, AuditLevel::kFull);
  ASSERT_TRUE(report.ok()) << report.ToString();
  auto scratch_or =
      CellSet::Build(accumulated, *geom, kPartitions, seed, &pool);
  ASSERT_TRUE(scratch_or.ok()) << scratch_or.status();
  ExpectSameCellSet(grown, *scratch_or);
}

/// The IngestBuffer wrapper: batch accounting, touched-set accumulation
/// across appends (drained by TakeTouched), and the same scratch-build
/// identity through its own Append path.
TEST(IngestBufferTest, BufferAccumulatesTouchedAcrossAppends) {
  const uint64_t seed = TestSeed(0xb0f);
  SCOPED_TRACE(SeedNote(seed));
  auto geom = Geom(2);
  ASSERT_TRUE(geom.ok());
  ThreadPool pool(2);
  auto buffer_or = IngestBuffer::Create(RandomData(200, 2, seed, 0.0, 20.0),
                                        *geom, kPartitions, seed, &pool);
  ASSERT_TRUE(buffer_or.ok()) << buffer_or.status();
  IngestBuffer buffer = std::move(*buffer_or);
  EXPECT_EQ(buffer.num_batches(), 1u);
  // The seed marks every cell touched.
  std::vector<uint32_t> touched = buffer.TakeTouched();
  EXPECT_EQ(touched.size(), buffer.cells().num_cells());
  EXPECT_TRUE(buffer.TakeTouched().empty());  // drained

  // Two appends (one empty) accumulate into ONE touched set.
  const Dataset b1 = RandomData(40, 2, seed + 1, 0.0, 20.0);
  ASSERT_TRUE(buffer.Append(b1, &pool).ok());
  ASSERT_TRUE(buffer.Append(Dataset(2), &pool).ok());
  const Dataset b2 = RandomData(40, 2, seed + 2, 0.0, 20.0);
  ASSERT_TRUE(buffer.Append(b2, &pool).ok());
  EXPECT_EQ(buffer.num_batches(), 4u);
  EXPECT_EQ(buffer.data().size(), 280u);

  std::vector<uint32_t> want;
  for (size_t i = 200; i < buffer.data().size(); ++i) {
    const int64_t id = buffer.cells().FindCell(
        geom->CellOf(buffer.data().point(i)));
    ASSERT_GE(id, 0);
    want.push_back(static_cast<uint32_t>(id));
  }
  std::sort(want.begin(), want.end());
  want.erase(std::unique(want.begin(), want.end()), want.end());
  EXPECT_EQ(buffer.TakeTouched(), want);

  auto scratch_or = CellSet::Build(buffer.data(), *geom, kPartitions, seed,
                                   &pool);
  ASSERT_TRUE(scratch_or.ok()) << scratch_or.status();
  ExpectSameCellSet(buffer.cells(), *scratch_or);
  EXPECT_EQ(buffer.rekeys(), 0u);

  // Creating from an empty seed is rejected (epoch 0 needs data).
  EXPECT_FALSE(
      IngestBuffer::Create(Dataset(2), *geom, kPartitions, seed).ok());
  // Dimension mismatch on append is rejected.
  EXPECT_FALSE(buffer.Append(Dataset(3)).ok());
}

TEST(IngestBufferTest, IngestRejectsMismatchedFirstNew) {
  const uint64_t seed = TestSeed(0xbad);
  auto geom = Geom(2);
  ASSERT_TRUE(geom.ok());
  Dataset data = RandomData(50, 2, seed, 0.0, 10.0);
  auto set_or = CellSet::Build(data, *geom, kPartitions, seed);
  ASSERT_TRUE(set_or.ok());
  const float p[2] = {1.0f, 1.0f};
  data.Append(p);
  // Wrong suffix start: claims points already binned are new.
  EXPECT_FALSE(set_or->IngestAppended(data, 10).ok());
  // first_new past the end of the data set.
  EXPECT_FALSE(set_or->IngestAppended(data, data.size() + 1).ok());
}

}  // namespace
}  // namespace rpdbscan
