// End-to-end out-of-core smoke test: clusters an on-disk .rpds data set
// several times larger than the Phase I-1 memory budget and asserts
//  * the labels are bit-identical to the all-in-RAM pipeline, and
//  * the measured peak RSS growth of the external Phase I-1 build stays
//    within the budget plus the (unavoidable) output structures — while
//    the in-RAM build on the same input provably exceeds it.
//
// RSS is measured per build in a forked child (VmHWM is a high-water
// mark: two builds in one process would mask each other), read from
// /proc/self/status before and after the build. Linux resets a child's
// VmHWM to its fork-time RSS, so the delta isolates the build itself.
//
// Under ASan/TSan the allocator and shadow memory dominate RSS, so the
// residency assertions are skipped (bit-identity still runs, smaller).

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/cell_set.h"
#include "core/grid.h"
#include "core/rp_dbscan.h"
#include "io/binary.h"
#include "io/mmap_dataset.h"
#include "synth/generators.h"
#include "util/hash.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RPDBSCAN_UNDER_SANITIZER 1
#endif
#if !defined(RPDBSCAN_UNDER_SANITIZER) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RPDBSCAN_UNDER_SANITIZER 1
#endif
#endif

namespace rpdbscan {
namespace {

uint64_t ReadVmHwmKb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

/// A pure function of everything downstream phases read from a CellSet.
uint64_t CellSetFingerprint(const CellSet& cells) {
  uint64_t h = Fnv1a64(
      reinterpret_cast<const uint8_t*>(cells.cell_point_offsets().data()),
      cells.cell_point_offsets().size() * sizeof(uint64_t));
  h = HashCombine(h, Fnv1a64(reinterpret_cast<const uint8_t*>(
                                 cells.point_ids().data()),
                             cells.point_ids().size() * sizeof(uint32_t)));
  for (uint32_t c = 0; c < cells.num_cells(); ++c) {
    const CellData& cell = cells.cell(c);
    h = HashCombine(h, cell.owner_partition);
    for (size_t d = 0; d < cells.geom().dim(); ++d) {
      h = HashCombine(h, static_cast<uint64_t>(
                             static_cast<int64_t>(cell.coord[d])));
    }
  }
  return h;
}

struct ChildResult {
  int32_t ok = 0;
  uint64_t fingerprint = 0;
  uint64_t hwm_delta_kb = 0;
  uint64_t num_cells = 0;
};

/// Forks, runs Phase I-1 in the child (external under `budget` when
/// `external`, in-RAM over the borrowed view otherwise), and reports the
/// structure fingerprint plus the build's VmHWM growth.
ChildResult RunBuildInChild(const std::string& rpds_path, double eps,
                            bool external, size_t budget,
                            const std::string& spill_dir) {
  int fds[2];
  if (pipe(fds) != 0) return ChildResult{};
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return ChildResult{};
  }
  if (pid == 0) {
    close(fds[0]);
    ChildResult r;
    auto run = [&]() -> bool {
      auto source = MmapDataset::Open(rpds_path);
      if (!source.ok()) return false;
      auto geom = GridGeometry::Create(source->dim(), eps, 0.1);
      if (!geom.ok()) return false;
      const uint64_t before_kb = ReadVmHwmKb();
      StatusOr<CellSet> cells = [&]() {
        if (external) {
          ExternalBuildOptions opts;
          opts.memory_budget_bytes = budget;
          opts.spill_dir = spill_dir;
          return CellSet::BuildExternal(*source, *geom, 16, 7, opts);
        }
        return CellSet::Build(source->BorrowedView(), *geom, 16, 7);
      }();
      if (!cells.ok()) return false;
      r.fingerprint = CellSetFingerprint(*cells);
      r.num_cells = cells->num_cells();
      r.hwm_delta_kb = ReadVmHwmKb() - before_kb;
      return true;
    };
    r.ok = run() ? 1 : 0;
    ssize_t w = write(fds[1], &r, sizeof(r));
    (void)w;
    close(fds[1]);
    _exit(r.ok ? 0 : 2);
  }
  close(fds[1]);
  ChildResult r;
  size_t got = 0;
  while (got < sizeof(r)) {
    const ssize_t n = read(fds[0], reinterpret_cast<char*>(&r) + got,
                           sizeof(r) - got);
    if (n <= 0) break;
    got += static_cast<size_t>(n);
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != sizeof(r) || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    return ChildResult{};
  }
  return r;
}

class OocoreE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/oocore_e2e_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    const std::string mkdir = "mkdir -p " + dir_;
    ASSERT_EQ(std::system(mkdir.c_str()), 0);
  }
  void TearDown() override {
    const std::string rm = "rm -rf " + dir_;
    (void)std::system(rm.c_str());
  }

  std::string dir_;
};

TEST_F(OocoreE2eTest, PeakRssBoundedByBudgetOnOversizedInput) {
#ifdef RPDBSCAN_UNDER_SANITIZER
  const size_t n = 60000;
#else
  const size_t n = 1500000;
#endif
  const size_t budget = 4u << 20;
  const Dataset ds = synth::GeoLifeLike(n, 111);
  const std::string path = dir_ + "/big.rpds";
  ASSERT_TRUE(WriteBinary(path, ds).ok());
  const uint64_t payload = ds.size() * ds.dim() * sizeof(float);
#ifndef RPDBSCAN_UNDER_SANITIZER
  ASSERT_GE(payload, 4 * budget) << "input must dwarf the budget";
#endif

  const ChildResult ext =
      RunBuildInChild(path, 2.0, /*external=*/true, budget, dir_);
  ASSERT_EQ(ext.ok, 1) << "external child build failed";
  const ChildResult in_ram =
      RunBuildInChild(path, 2.0, /*external=*/false, 0, dir_);
  ASSERT_EQ(in_ram.ok, 1) << "in-RAM child build failed";

  // Same structures, bit for bit.
  EXPECT_EQ(ext.fingerprint, in_ram.fingerprint);
  EXPECT_EQ(ext.num_cells, in_ram.num_cells);

#ifndef RPDBSCAN_UNDER_SANITIZER
  // The external build may keep resident: its transient buffers (bounded
  // by the budget), the CSR outputs it returns, the CellData/partition
  // vectors (per cell), and one chunk of the mapped payload (inside the
  // budget). Everything else must have been spilled or released.
  const uint64_t output_bytes =
      4 * static_cast<uint64_t>(n) /* point_ids */ +
      ext.num_cells * 160 /* CellData + offsets + index + partitions */;
  const uint64_t slack = 8u << 20;  // allocator + page-cache noise
  const uint64_t limit_kb = (budget + output_bytes + slack) / 1024;
  EXPECT_LE(ext.hwm_delta_kb, limit_kb)
      << "external build RSS grew past the budget (payload="
      << payload / 1024 << "KB)";
  // The in-RAM build over the same mapped input must cost strictly more:
  // it faults the whole payload resident and sorts full-size pair
  // buffers. If the external path ever regresses into loading
  // everything, the two deltas converge and the bound above fires too.
  EXPECT_GT(in_ram.hwm_delta_kb, ext.hwm_delta_kb)
      << "external=" << ext.hwm_delta_kb
      << "KB in-ram=" << in_ram.hwm_delta_kb << "KB";
#endif
}

TEST_F(OocoreE2eTest, FullPipelineLabelsBitIdenticalWithShards) {
#ifdef RPDBSCAN_UNDER_SANITIZER
  const size_t n = 15000;
#else
  const size_t n = 60000;
#endif
  const Dataset ds = synth::GeoLifeLike(n, 112);
  const std::string path = dir_ + "/pts.rpds";
  ASSERT_TRUE(WriteBinary(path, ds).ok());
  auto source = MmapDataset::Open(path);
  ASSERT_TRUE(source.ok());
  const Dataset view = source->BorrowedView();

  RpDbscanOptions base;
  base.eps = 2.0;
  base.min_pts = 20;
  base.num_partitions = 16;
  base.num_threads = 2;
  auto plain = RunRpDbscan(ds, base);
  ASSERT_TRUE(plain.ok()) << plain.status();

  RpDbscanOptions oo = base;
  oo.point_source = &*source;
  oo.memory_budget_bytes = 512u << 10;
  oo.spill_dir = dir_;
  oo.shard_workers = 2;
  oo.audit_level = AuditLevel::kCheap;  // includes the shard audit
  auto oocore = RunRpDbscan(view, oo);
  ASSERT_TRUE(oocore.ok()) << oocore.status();

  EXPECT_EQ(oocore->labels, plain->labels);
  EXPECT_TRUE(oocore->stats.external_phase1);
  EXPECT_GT(oocore->stats.external_chunks, 1u);
  EXPECT_GT(oocore->stats.external_spill_bytes, 0u);
  EXPECT_EQ(oocore->stats.shard_workers, 2u);
  EXPECT_GT(oocore->stats.shard_shuffle_bytes, 0u);
  EXPECT_FALSE(plain->stats.external_phase1);
}

TEST_F(OocoreE2eTest, PointSourceMismatchRejected) {
  const Dataset ds = synth::GeoLifeLike(2000, 113);
  const std::string path = dir_ + "/pts.rpds";
  ASSERT_TRUE(WriteBinary(path, ds).ok());
  auto source = MmapDataset::Open(path);
  ASSERT_TRUE(source.ok());
  const Dataset other = synth::GeoLifeLike(1999, 114);
  RpDbscanOptions o;
  o.eps = 2.0;
  o.min_pts = 20;
  o.point_source = &*source;
  auto r = RunRpDbscan(other, o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rpdbscan
