// Randomized equivalence fuzzing: RP-DBSCAN must track exact DBSCAN on
// random mixtures with random dimensionality, eps, minPts, partition
// count and seed. Complements the curated accuracy sweeps by exploring
// parameter corners no one hand-picked.

#include <gtest/gtest.h>

#include "baselines/exact_dbscan.h"
#include "core/rp_dbscan.h"
#include "metrics/rand_index.h"
#include "synth/generators.h"
#include "util/random.h"

#include "test_seed.h"

namespace rpdbscan {
namespace {

class FuzzEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEquivalence, RpTracksExactOnRandomConfigs) {
  const uint64_t seed = TestSeed(GetParam());
  SCOPED_TRACE(SeedNote(seed));
  Rng rng(seed);
  // Random data shape.
  const size_t dim = 1 + rng.Uniform(4);             // 1..4
  const size_t components = 2 + rng.Uniform(8);      // 2..9
  const double alpha = 0.25 * (1 + rng.Uniform(8));  // 0.25..2.0
  synth::GaussianMixtureOptions g;
  g.num_points = 1500 + rng.Uniform(1500);
  g.dim = dim;
  g.num_components = components;
  g.skewness_alpha = alpha;
  g.seed = rng.Next();
  const Dataset ds = GaussianMixture(g);

  // Random clustering parameters in a regime where structure exists.
  const double eps = rng.UniformDouble(1.0, 4.0);
  const size_t min_pts = 5 + rng.Uniform(25);

  RpDbscanOptions o;
  o.eps = eps;
  o.min_pts = min_pts;
  o.rho = 0.01;
  o.num_partitions = 1 + rng.Uniform(24);
  o.num_threads = 2;
  o.seed = rng.Next();
  // Every fuzz config doubles as an invariant-audit run: the full audit
  // must find zero violations (a violation fails RunRpDbscan outright).
  o.audit_level = AuditLevel::kFull;
  auto rp = RunRpDbscan(ds, o);
  ASSERT_TRUE(rp.ok()) << rp.status();
  auto exact = RunExactDbscan(ds, {eps, min_pts});
  ASSERT_TRUE(exact.ok());
  auto ri = RandIndex(rp->labels, exact->labels);
  ASSERT_TRUE(ri.ok());
  EXPECT_GE(*ri, 0.99) << "dim=" << dim << " eps=" << eps
                       << " min_pts=" << min_pts
                       << " partitions=" << o.num_partitions;
}

INSTANTIATE_TEST_SUITE_P(TwentyConfigs, FuzzEquivalence,
                         ::testing::Range<uint64_t>(1000, 1020));

}  // namespace
}  // namespace rpdbscan
