#include "spatial/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "io/dataset.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

std::vector<uint32_t> BruteRadius(const Dataset& ds, const float* q,
                                  double r) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (DistanceSquared(q, ds.point(i), ds.dim()) <= r * r) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

Dataset RandomDataset(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Dataset ds(dim);
  ds.Reserve(n);
  std::vector<float> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = static_cast<float>(rng.UniformDouble(0, 100));
    ds.Append(p.data());
  }
  return ds;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  tree.Build(nullptr, 0, 2);
  const float q[2] = {0, 0};
  EXPECT_TRUE(tree.RadiusSearch(q, 100).empty());
}

TEST(RTreeTest, SinglePoint) {
  Dataset ds(2);
  ds.Append({5, 5});
  RTree tree;
  tree.Build(ds.flat().data(), ds.size(), 2);
  const float near[2] = {5.5f, 5.0f};
  const float far[2] = {50, 50};
  EXPECT_EQ(tree.RadiusSearch(near, 1.0).size(), 1u);
  EXPECT_TRUE(tree.RadiusSearch(far, 1.0).empty());
}

TEST(RTreeTest, MatchesBruteForce2d) {
  const Dataset ds = RandomDataset(2000, 2, 142);
  RTree tree;
  tree.Build(ds.flat().data(), ds.size(), ds.dim());
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const float q[2] = {static_cast<float>(rng.UniformDouble(0, 100)),
                        static_cast<float>(rng.UniformDouble(0, 100))};
    const double r = rng.UniformDouble(0.5, 15.0);
    auto got = tree.RadiusSearch(q, r);
    auto want = BruteRadius(ds, q, r);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

TEST(RTreeTest, MatchesBruteForceHighDim) {
  const Dataset ds = RandomDataset(600, 9, 143);
  RTree tree;
  tree.Build(ds.flat().data(), ds.size(), ds.dim());
  Rng rng(8);
  std::vector<float> q(9);
  for (int trial = 0; trial < 20; ++trial) {
    for (auto& v : q) v = static_cast<float>(rng.UniformDouble(0, 100));
    const double r = rng.UniformDouble(20.0, 80.0);
    auto got = tree.RadiusSearch(q.data(), r);
    auto want = BruteRadius(ds, q.data(), r);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

TEST(RTreeTest, OneDimensional) {
  const Dataset ds = RandomDataset(500, 1, 144);
  RTree tree;
  tree.Build(ds.flat().data(), ds.size(), 1);
  const float q[1] = {50};
  auto got = tree.RadiusSearch(q, 10.0);
  auto want = BruteRadius(ds, q, 10.0);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(RTreeTest, DuplicatePointsAllFound) {
  Dataset ds(2);
  for (int i = 0; i < 50; ++i) ds.Append({3, 3});
  RTree tree;
  tree.Build(ds.flat().data(), ds.size(), 2, /*fanout=*/4);
  const float q[2] = {3, 3};
  EXPECT_EQ(tree.RadiusSearch(q, 0.5).size(), 50u);
}

TEST(RTreeTest, SmallFanoutStillCorrect) {
  const Dataset ds = RandomDataset(300, 3, 145);
  RTree tree;
  tree.Build(ds.flat().data(), ds.size(), 3, /*fanout=*/2);
  const float q[3] = {50, 50, 50};
  auto got = tree.RadiusSearch(q, 30.0);
  auto want = BruteRadius(ds, q, 30.0);
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(RTreeTest, ReportsDistances) {
  const Dataset ds = RandomDataset(200, 2, 146);
  RTree tree;
  tree.Build(ds.flat().data(), ds.size(), 2);
  const float q[2] = {50, 50};
  tree.ForEachInRadius(q, 25.0, [&](uint32_t id, double d2) {
    EXPECT_NEAR(d2, DistanceSquared(q, ds.point(id), 2), 1e-9);
    EXPECT_LE(d2, 625.0 + 1e-9);
  });
}

TEST(RTreeTest, CollectInRadiusMatchesCallbackFormAndAppends) {
  const Dataset ds = RandomDataset(2000, 3, 18);
  RTree tree;
  tree.Build(ds.flat().data(), ds.size(), ds.dim());
  for (const double r : {0.0, 2.0, 10.0, 200.0}) {
    const float* q = ds.point(23);
    std::vector<uint32_t> got = {4242};  // must append, not clear
    tree.CollectInRadius(q, r, &got);
    ASSERT_GE(got.size(), 1u);
    EXPECT_EQ(got.front(), 4242u);
    got.erase(got.begin());
    std::vector<uint32_t> want;
    tree.ForEachInRadius(q, r,
                         [&want](uint32_t id, double) { want.push_back(id); });
    EXPECT_EQ(got, want);
  }
}

}  // namespace
}  // namespace rpdbscan
