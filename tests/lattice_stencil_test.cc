// LatticeStencil correctness: the offset set must be exactly the
// brute-force enumeration of all integer offsets whose box-to-box lattice
// gap fits inside eps (independently recomputed two ways — pure integer
// and from the actual grid geometry in doubles), sorted nearest-ring
// first, with the high-dimensionality fallback kicking in exactly at the
// size cap.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/grid.h"
#include "core/lattice_stencil.h"

namespace rpdbscan {
namespace {

// Independent reference: odometer over the full window [-window, window]^d,
// keeping every non-zero offset with sum_i max(0, |o_i| - 1)^2 <= d. No
// per-axis radius shortcut, no pruning — shaped nothing like the DFS in
// LatticeStencil::Create.
std::set<std::vector<int32_t>> BruteForceOffsets(size_t dim,
                                                 int32_t window) {
  std::set<std::vector<int32_t>> out;
  std::vector<int32_t> o(dim, -window);
  for (;;) {
    uint64_t m = 0;
    bool zero = true;
    for (const int32_t v : o) {
      if (v != 0) zero = false;
      const uint64_t a = static_cast<uint64_t>(v < 0 ? -v : v);
      if (a > 1) m += (a - 1) * (a - 1);
    }
    if (!zero && m <= dim) out.insert(o);
    size_t d = 0;
    while (d < dim && ++o[d] > window) {
      o[d] = -window;
      ++d;
    }
    if (d == dim) break;
  }
  return out;
}

std::set<std::vector<int32_t>> StencilOffsets(const LatticeStencil& s) {
  std::set<std::vector<int32_t>> out;
  for (size_t i = 0; i < s.num_offsets(); ++i) {
    const std::vector<int32_t> o(s.offset(i), s.offset(i) + s.dim());
    EXPECT_TRUE(out.insert(o).second) << "duplicate stencil offset";
  }
  return out;
}

TEST(LatticeStencilTest, MatchesBruteForceEnumeration) {
  for (size_t dim = 1; dim <= 5; ++dim) {
    SCOPED_TRACE("dim=" + std::to_string(dim));
    const LatticeStencil s = LatticeStencil::Create(dim, size_t{1} << 20);
    ASSERT_TRUE(s.enabled());
    const int32_t radius =
        1 + static_cast<int32_t>(std::floor(std::sqrt(
                static_cast<double>(dim))));
    const std::set<std::vector<int32_t>> got = StencilOffsets(s);
    for (const std::vector<int32_t>& o : got) {
      for (const int32_t v : o) {
        EXPECT_LE(v < 0 ? -v : v, radius);  // per-axis radius bound
      }
    }
    // Window two cells beyond the radius: proves nothing past the bound
    // belongs in the set either.
    EXPECT_EQ(got, BruteForceOffsets(dim, radius + 2));
  }
}

TEST(LatticeStencilTest, MembershipEqualsGeometricBoxGapCriterion) {
  // The integer criterion must agree with the real geometry it stands in
  // for: an offset is in the stencil iff the box-to-box gap of two cells
  // at that offset (cell side = eps/sqrt(d), computed in doubles from an
  // actual GridGeometry) is within eps up to the query kernel's
  // disjointness margin. An awkward eps exercises rounding.
  for (const size_t dim : {size_t{2}, size_t{3}, size_t{4}}) {
    SCOPED_TRACE("dim=" + std::to_string(dim));
    auto geom = GridGeometry::Create(dim, 0.73, 0.05);
    ASSERT_TRUE(geom.ok());
    const double side = geom->cell_side();
    const double eps2 = geom->eps() * geom->eps();
    const LatticeStencil s = LatticeStencil::Create(dim, size_t{1} << 20);
    ASSERT_TRUE(s.enabled());
    const std::set<std::vector<int32_t>> got = StencilOffsets(s);
    std::vector<int32_t> o(dim, -5);
    for (;;) {
      bool zero = true;
      double gap2 = 0.0;
      for (const int32_t v : o) {
        if (v != 0) zero = false;
        const int32_t a = v < 0 ? -v : v;
        if (a > 1) {
          const double g = static_cast<double>(a - 1) * side;
          gap2 += g * g;
        }
      }
      if (!zero) {
        EXPECT_EQ(got.count(o) == 1, gap2 <= eps2 * (1.0 + 1e-9))
            << "offset gap2=" << gap2 << " eps2=" << eps2;
      }
      size_t d = 0;
      while (d < dim && ++o[d] > 5) {
        o[d] = -5;
        ++d;
      }
      if (d == dim) break;
    }
  }
}

TEST(LatticeStencilTest, SortedByDistanceClassWithCorrectClasses) {
  const LatticeStencil s = LatticeStencil::Create(3, 8192);
  ASSERT_TRUE(s.enabled());
  ASSERT_GT(s.num_offsets(), 0u);
  EXPECT_EQ(s.min_dist_class(0), 0u);  // nearest ring first: touching cells
  for (size_t i = 0; i < s.num_offsets(); ++i) {
    uint32_t m = 0;
    for (size_t d = 0; d < s.dim(); ++d) {
      const int32_t v = s.offset(i)[d];
      const uint32_t a = static_cast<uint32_t>(v < 0 ? -v : v);
      if (a > 1) m += (a - 1) * (a - 1);
    }
    EXPECT_EQ(s.min_dist_class(i), m);
    if (i > 0) EXPECT_GE(s.min_dist_class(i), s.min_dist_class(i - 1));
  }
}

TEST(LatticeStencilTest, KnownSizesPerDimension) {
  // Closed-form counts (kept-offset counts minus the excluded self):
  // d=2 and d=3 keep their whole window; d=5 is the largest default-on
  // dimensionality.
  EXPECT_EQ(LatticeStencil::Create(2, 8192).num_offsets(), 24u);
  EXPECT_EQ(LatticeStencil::Create(3, 8192).num_offsets(), 124u);
  EXPECT_EQ(LatticeStencil::Create(5, 8192).num_offsets(), 6094u);
}

TEST(LatticeStencilTest, HighDimFallbackTriggers) {
  // d=6 needs 41220 offsets — over the default cap — and d=13 (the
  // TeraLike dimensionality) is astronomically over; both must come back
  // disabled, as must an explicitly tiny or zero cap. Enumeration aborts
  // early, so even d=13 returns promptly.
  EXPECT_FALSE(LatticeStencil::Create(6, 8192).enabled());
  EXPECT_FALSE(LatticeStencil::Create(13, 8192).enabled());
  EXPECT_FALSE(LatticeStencil::Create(2, 3).enabled());
  EXPECT_FALSE(LatticeStencil::Create(2, 0).enabled());
  EXPECT_EQ(LatticeStencil::Create(6, 8192).num_offsets(), 0u);
  // A cap exactly at the set size keeps the stencil enabled; one below
  // disables it.
  EXPECT_TRUE(LatticeStencil::Create(3, 124).enabled());
  EXPECT_FALSE(LatticeStencil::Create(3, 123).enabled());
  // Raising the cap re-enables d=6 and yields the predicted count.
  const LatticeStencil wide = LatticeStencil::Create(6, 65536);
  EXPECT_TRUE(wide.enabled());
  EXPECT_EQ(wide.num_offsets(), 41220u);
}

}  // namespace
}  // namespace rpdbscan
