#include "parallel/shard/shard_executor.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/cell_dictionary.h"
#include "core/cell_set.h"
#include "core/grid.h"
#include "parallel/shard/shard_protocol.h"
#include "synth/generators.h"
#include "verify/audit.h"

namespace rpdbscan {
namespace {

struct Fixture {
  Dataset data;
  GridGeometry geom;
  CellSet cells;
};

Fixture MakeFixture(size_t n, uint64_t seed, size_t partitions = 8) {
  auto geom = GridGeometry::Create(3, 2.0, 0.1);
  EXPECT_TRUE(geom.ok());
  Dataset data = synth::GeoLifeLike(n, seed);
  auto cells = CellSet::Build(data, *geom, partitions, 7);
  EXPECT_TRUE(cells.ok());
  return Fixture{std::move(data), *geom, std::move(*cells)};
}

TEST(ShardExecutorTest, AssembledDictionaryByteEqualToInProcess) {
  Fixture f = MakeFixture(8000, 101);
  const CellDictionaryOptions opts;
  auto in_proc = CellDictionary::Build(f.data, f.cells, opts);
  ASSERT_TRUE(in_proc.ok());
  for (const size_t workers : {1u, 2u, 3u, 4u}) {
    ShardExecStats stats;
    auto entries =
        BuildDictionaryEntriesSharded(f.data, f.cells, workers, &stats);
    ASSERT_TRUE(entries.ok()) << entries.status();
    ASSERT_EQ(entries->size(), f.cells.num_cells());
    auto dict = CellDictionary::FromEntries(f.geom, std::move(*entries),
                                            opts);
    ASSERT_TRUE(dict.ok()) << dict.status();
    // The Lemma 4.3 broadcast payload must be byte-identical: crossing
    // the process boundary is invisible in the assembled dictionary.
    EXPECT_EQ(dict->Serialize(), in_proc->Serialize())
        << "workers=" << workers;
    EXPECT_EQ(stats.num_workers, workers);
    ASSERT_EQ(stats.shard_bytes.size(), workers);
    ASSERT_EQ(stats.shard_cells.size(), workers);
    ASSERT_EQ(stats.worker_build_seconds.size(), workers);
    uint64_t cells_total = 0;
    for (const uint64_t c : stats.shard_cells) cells_total += c;
    EXPECT_EQ(cells_total, f.cells.num_cells());
    EXPECT_GT(stats.TotalShuffleBytes(), 0u);
    EXPECT_GT(stats.wall_seconds, 0.0);
  }
}

TEST(ShardExecutorTest, AuditShardAssemblyPasses) {
  Fixture f = MakeFixture(5000, 102);
  const CellDictionaryOptions opts;
  auto entries = BuildDictionaryEntriesSharded(f.data, f.cells, 3);
  ASSERT_TRUE(entries.ok()) << entries.status();
  auto dict =
      CellDictionary::FromEntries(f.geom, std::move(*entries), opts);
  ASSERT_TRUE(dict.ok());
  const AuditReport rep =
      AuditShardAssembly(f.data, f.cells, *dict, opts);
  EXPECT_TRUE(rep.ok()) << rep.ToString();
  EXPECT_GT(rep.checks(), 0u);
}

TEST(ShardExecutorTest, MoreWorkersThanPartitionsLeavesIdleWorkers) {
  // Workers beyond the partition count own no cells; their empty shards
  // must still frame/decode cleanly and the assembly must be complete.
  Fixture f = MakeFixture(3000, 103, /*partitions=*/2);
  ShardExecStats stats;
  auto entries =
      BuildDictionaryEntriesSharded(f.data, f.cells, 5, &stats);
  ASSERT_TRUE(entries.ok()) << entries.status();
  EXPECT_EQ(entries->size(), f.cells.num_cells());
  uint64_t cells_total = 0;
  size_t empty_shards = 0;
  for (const uint64_t c : stats.shard_cells) {
    cells_total += c;
    if (c == 0) ++empty_shards;
  }
  EXPECT_EQ(cells_total, f.cells.num_cells());
  EXPECT_GE(empty_shards, 3u);  // workers 2..4 own no partition
}

TEST(ShardExecutorTest, ZeroWorkersRejected) {
  Fixture f = MakeFixture(500, 104);
  EXPECT_FALSE(BuildDictionaryEntriesSharded(f.data, f.cells, 0).ok());
}

TEST(ShardProtocolTest, ContainerRoundTrip) {
  Fixture f = MakeFixture(2000, 105);
  ShardResult result;
  result.worker_id = 3;
  result.build_seconds = 0.25;
  for (uint32_t c = 0; c < f.cells.num_cells(); ++c) {
    result.entries.push_back(CellDictionary::MakeCellEntry(
        f.data, f.geom, f.cells.cell(c), c));
  }
  const std::vector<uint8_t> bytes =
      EncodeShardContainer(result, f.geom.dim());
  auto back = DecodeShardContainer(bytes.data(), bytes.size(),
                                   f.geom.dim());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->worker_id, 3u);
  EXPECT_DOUBLE_EQ(back->build_seconds, 0.25);
  ASSERT_EQ(back->entries.size(), result.entries.size());
  for (size_t i = 0; i < result.entries.size(); ++i) {
    EXPECT_EQ(back->entries[i].cell_id, result.entries[i].cell_id);
    EXPECT_EQ(back->entries[i].coord, result.entries[i].coord);
    ASSERT_EQ(back->entries[i].subcells.size(),
              result.entries[i].subcells.size());
  }
}

TEST(ShardProtocolTest, DetectsCorruption) {
  Fixture f = MakeFixture(1000, 106);
  ShardResult result;
  result.worker_id = 0;
  result.entries.push_back(CellDictionary::MakeCellEntry(
      f.data, f.geom, f.cells.cell(0), 0));
  std::vector<uint8_t> bytes = EncodeShardContainer(result, f.geom.dim());
  // Flip a byte somewhere in the middle: the section-file checksum must
  // reject the container.
  bytes[bytes.size() / 2] ^= 0x40;
  EXPECT_FALSE(
      DecodeShardContainer(bytes.data(), bytes.size(), f.geom.dim()).ok());
}

TEST(ShardProtocolTest, RejectsDimMismatchAndTruncation) {
  Fixture f = MakeFixture(1000, 107);
  ShardResult result;
  result.worker_id = 1;
  result.entries.push_back(CellDictionary::MakeCellEntry(
      f.data, f.geom, f.cells.cell(0), 0));
  const std::vector<uint8_t> bytes =
      EncodeShardContainer(result, f.geom.dim());
  EXPECT_FALSE(DecodeShardContainer(bytes.data(), bytes.size(),
                                    f.geom.dim() + 1)
                   .ok());
  EXPECT_FALSE(
      DecodeShardContainer(bytes.data(), bytes.size() - 9, f.geom.dim())
          .ok());
  EXPECT_FALSE(DecodeShardContainer(bytes.data(), 3, f.geom.dim()).ok());
}

}  // namespace
}  // namespace rpdbscan
