#include "util/flags.h"

#include <gtest/gtest.h>

namespace rpdbscan {
namespace {

FlagSet MustParse(std::vector<const char*> argv) {
  auto f = FlagSet::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(f.ok());
  return *f;
}

TEST(FlagsTest, EqualsSyntax) {
  const FlagSet f = MustParse({"--eps=0.5", "--minpts=10"});
  EXPECT_TRUE(f.Has("eps"));
  EXPECT_EQ(f.GetString("eps"), "0.5");
  EXPECT_EQ(*f.GetInt("minpts", 0), 10);
}

TEST(FlagsTest, SpaceSyntax) {
  const FlagSet f = MustParse({"--input", "data.csv", "--threads", "4"});
  EXPECT_EQ(f.GetString("input"), "data.csv");
  EXPECT_EQ(*f.GetInt("threads", 0), 4);
}

TEST(FlagsTest, BareBooleans) {
  const FlagSet f = MustParse({"--verbose", "--stats"});
  EXPECT_TRUE(f.GetBool("verbose"));
  EXPECT_TRUE(f.GetBool("stats"));
  EXPECT_FALSE(f.GetBool("quiet"));
  EXPECT_TRUE(f.GetBool("quiet", true));  // fallback honored
}

TEST(FlagsTest, BooleanValues) {
  const FlagSet f = MustParse({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(f.GetBool("a"));
  EXPECT_TRUE(f.GetBool("b"));
  EXPECT_TRUE(f.GetBool("c"));
  EXPECT_FALSE(f.GetBool("d"));
}

TEST(FlagsTest, Positionals) {
  const FlagSet f = MustParse({"input.csv", "--eps=1", "more.csv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.csv");
  EXPECT_EQ(f.positional()[1], "more.csv");
}

TEST(FlagsTest, Fallbacks) {
  const FlagSet f = MustParse({});
  EXPECT_EQ(f.GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(*f.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(*f.GetDouble("missing", 2.5), 2.5);
}

TEST(FlagsTest, NumericParseFailures) {
  const FlagSet f = MustParse({"--n=abc", "--x=1.5notanumber"});
  EXPECT_FALSE(f.GetInt("n", 0).ok());
  EXPECT_FALSE(f.GetDouble("x", 0).ok());
}

TEST(FlagsTest, DoubleParsing) {
  const FlagSet f = MustParse({"--rho=0.01", "--eps=1e-3"});
  EXPECT_DOUBLE_EQ(*f.GetDouble("rho", 0), 0.01);
  EXPECT_DOUBLE_EQ(*f.GetDouble("eps", 0), 1e-3);
}

TEST(FlagsTest, RejectsBareDashDash) {
  const char* argv[] = {"--"};
  EXPECT_FALSE(FlagSet::Parse(1, argv).ok());
}

TEST(FlagsTest, RejectsEmptyName) {
  const char* argv[] = {"--=value"};
  EXPECT_FALSE(FlagSet::Parse(1, argv).ok());
}

TEST(FlagsTest, LastValueWins) {
  const FlagSet f = MustParse({"--eps=1", "--eps=2"});
  EXPECT_EQ(f.GetString("eps"), "2");
}

}  // namespace
}  // namespace rpdbscan
