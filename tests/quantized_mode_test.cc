// Quantized fixed-point mode: the integer pre-filter plus its exact
// fallback must leave clustering bit-identical to exact mode (the error
// band is always resolved by the float compare), the lattice must
// auto-disable when the data span overflows it, and the stats must say
// which mode actually ran.
#include <gtest/gtest.h>

#include "core/rp_dbscan.h"
#include "io/dataset.h"
#include "metrics/nmi.h"
#include "metrics/rand_index.h"
#include "synth/generators.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

RpDbscanOptions BaseOpts(double eps, size_t min_pts) {
  RpDbscanOptions o;
  o.eps = eps;
  o.min_pts = min_pts;
  o.num_threads = 2;
  o.num_partitions = 8;
  return o;
}

TEST(QuantizedModeTest, LabelsBitIdenticalToExactMode) {
  for (const size_t dim : {2u, 3u, 5u}) {
    const Dataset ds = synth::Blobs(4000, 4, 1.0, 130 + dim, dim);
    RpDbscanOptions exact = BaseOpts(1.5, 15);
    RpDbscanOptions quant = exact;
    quant.quantized = true;
    auto a = RunRpDbscan(ds, exact);
    auto b = RunRpDbscan(ds, quant);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_FALSE(a->stats.quantized_mode);
    EXPECT_TRUE(b->stats.quantized_mode) << "dim=" << dim;
    EXPECT_EQ(a->labels, b->labels) << "dim=" << dim;
    auto ri = RandIndex(a->labels, b->labels);
    auto nmi = NormalizedMutualInformation(a->labels, b->labels);
    ASSERT_TRUE(ri.ok());
    ASSERT_TRUE(nmi.ok());
    EXPECT_DOUBLE_EQ(*ri, 1.0);
    EXPECT_DOUBLE_EQ(*nmi, 1.0);
  }
}

TEST(QuantizedModeTest, IdenticalUnderScalarKernelsToo) {
  // The quantized scalar kernel (not just the AVX2 one) must agree.
  const Dataset ds = synth::GeoLifeLike(4000, 140);
  RpDbscanOptions exact = BaseOpts(0.2, 12);
  exact.scalar_kernels = true;
  RpDbscanOptions quant = exact;
  quant.quantized = true;
  auto a = RunRpDbscan(ds, exact);
  auto b = RunRpDbscan(ds, quant);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_EQ(a->stats.num_clusters, b->stats.num_clusters);
  EXPECT_EQ(a->stats.num_noise_points, b->stats.num_noise_points);
}

TEST(QuantizedModeTest, SurvivesFullAudit) {
  const Dataset ds = synth::Blobs(2500, 3, 1.0, 141, 3);
  RpDbscanOptions o = BaseOpts(1.5, 15);
  o.quantized = true;
  o.audit_level = AuditLevel::kFull;
  auto r = RunRpDbscan(ds, o);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->stats.quantized_mode);
  EXPECT_EQ(r->stats.audit_violations, 0u);
}

TEST(QuantizedModeTest, AutoDisablesWhenSpanOverflowsLattice) {
  // eps of 1e-6 over a [0,100]^2 extent needs ~6.6e12 quanta per axis —
  // far past the 32-bit lattice. The run must fall back to exact mode
  // (reported, not failed).
  Rng rng(142);
  Dataset ds(2);
  for (int i = 0; i < 400; ++i) {
    ds.Append({static_cast<float>(rng.UniformDouble(0, 100)),
               static_cast<float>(rng.UniformDouble(0, 100))});
  }
  RpDbscanOptions o = BaseOpts(1.0e-6, 5);
  o.quantized = true;
  auto r = RunRpDbscan(ds, o);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->stats.quantized_mode);
  EXPECT_EQ(r->stats.quantized_exact_fallbacks, 0u);
}

TEST(QuantizedModeTest, FallbackCounterIsPlumbed) {
  // On a dataset with plenty of near-eps pairs some sub-cells must land
  // in the error band; the counter in the stats is how ablations see the
  // fallback rate. (Exact count is data-dependent — assert it moved and
  // that it is absent in exact mode.)
  const Dataset ds = synth::OsmLike(6000, 143);
  RpDbscanOptions o = BaseOpts(0.5, 10);
  o.quantized = true;
  auto q = RunRpDbscan(ds, o);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->stats.quantized_mode);
  RpDbscanOptions e = BaseOpts(0.5, 10);
  auto x = RunRpDbscan(ds, e);
  ASSERT_TRUE(x.ok()) << x.status();
  EXPECT_EQ(x->stats.quantized_exact_fallbacks, 0u);
  EXPECT_EQ(q->labels, x->labels);
}

}  // namespace
}  // namespace rpdbscan
