// The serving request loop and its framing: round-trips over real fds
// (pipes and socketpairs), truncation and corruption rejection, and a
// full client/server exchange whose results must match a local
// ClassifyBatch bit-for-bit. Runs in the TSan leg of tools/run_checks.sh
// (label sanitizer-safe): the loop's reader thread, admission queue and
// classification pool are all exercised concurrently here.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/rp_dbscan.h"
#include "io/framing.h"
#include "parallel/thread_pool.h"
#include "serve/label_server.h"
#include "serve/request_loop.h"
#include "serve/snapshot.h"
#include "synth/generators.h"
#include "test_seed.h"

namespace rpdbscan {
namespace {

constexpr uint32_t kTestMagic = 0x54455354;  // "TEST"

struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
  Pipe() {
    int fds[2];
    EXPECT_EQ(::pipe(fds), 0);
    read_fd = fds[0];
    write_fd = fds[1];
  }
  ~Pipe() {
    if (read_fd >= 0) ::close(read_fd);
    if (write_fd >= 0) ::close(write_fd);
  }
  void CloseWrite() {
    ::close(write_fd);
    write_fd = -1;
  }
};

TEST(FramingTest, RoundTripOverPipe) {
  Pipe p;
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7};
  ASSERT_TRUE(
      WriteFrame(p.write_fd, kTestMagic, 42, payload.data(), payload.size())
          .ok());
  ASSERT_TRUE(WriteFrame(p.write_fd, kTestMagic, 7, nullptr, 0).ok());
  p.CloseWrite();

  Frame f;
  ASSERT_TRUE(ReadFrame(p.read_fd, kTestMagic, 1 << 20, &f, "test").ok());
  EXPECT_EQ(f.type, 42u);
  EXPECT_EQ(f.payload, payload);
  ASSERT_TRUE(ReadFrame(p.read_fd, kTestMagic, 1 << 20, &f, "test").ok());
  EXPECT_EQ(f.type, 7u);
  EXPECT_TRUE(f.payload.empty());
  // Clean EOF between frames is NotFound, the loop's normal exit.
  const Status s = ReadFrame(p.read_fd, kTestMagic, 1 << 20, &f, "test");
  EXPECT_EQ(s.code(), StatusCode::kNotFound) << s;
}

TEST(FramingTest, RoutedFramesInterleaveWithClassic) {
  Pipe p;
  const std::vector<uint8_t> payload = {10, 20, 30};
  ASSERT_TRUE(WriteRoutedFrame(p.write_fd, kTestMagic, 5, /*model_id=*/42,
                               payload.data(), payload.size())
                  .ok());
  ASSERT_TRUE(
      WriteFrame(p.write_fd, kTestMagic, 6, payload.data(), payload.size())
          .ok());
  ASSERT_TRUE(
      WriteRoutedFrame(p.write_fd, kTestMagic, 7, /*model_id=*/0, nullptr, 0)
          .ok());
  p.CloseWrite();

  Frame f;
  ASSERT_TRUE(ReadFrame(p.read_fd, kTestMagic, 1 << 20, &f, "test").ok());
  EXPECT_TRUE(f.routed);
  EXPECT_EQ(f.type, 5u);
  EXPECT_EQ(f.model_id, 42u);
  EXPECT_EQ(f.payload, payload);
  ASSERT_TRUE(ReadFrame(p.read_fd, kTestMagic, 1 << 20, &f, "test").ok());
  EXPECT_FALSE(f.routed);  // a v1 frame resets the routing fields
  EXPECT_EQ(f.type, 6u);
  EXPECT_EQ(f.model_id, 0u);
  ASSERT_TRUE(ReadFrame(p.read_fd, kTestMagic, 1 << 20, &f, "test").ok());
  EXPECT_TRUE(f.routed);
  EXPECT_EQ(f.model_id, 0u);
  EXPECT_TRUE(f.payload.empty());
}

TEST(FramingTest, RoutedReservedFieldMustBeZero) {
  // Hand-build a routed header with a poisoned reserved word.
  Pipe p;
  std::vector<uint8_t> header(24, 0);
  const uint32_t magic = kTestMagic | kFrameRouted;
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<uint8_t>(magic >> (8 * i));
  }
  header[4] = 1;   // type
  header[20] = 9;  // reserved != 0
  ASSERT_EQ(::write(p.write_fd, header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  p.CloseWrite();
  Frame f;
  const Status s = ReadFrame(p.read_fd, kTestMagic, 1 << 20, &f, "test");
  EXPECT_EQ(s.code(), StatusCode::kIOError) << s;
}

TEST(FramingTest, TruncationAndBadHeaderAreIOErrors) {
  {
    // Header cut mid-way.
    Pipe p;
    const uint8_t partial[7] = {0};
    ASSERT_EQ(::write(p.write_fd, partial, sizeof(partial)),
              static_cast<ssize_t>(sizeof(partial)));
    p.CloseWrite();
    Frame f;
    const Status s = ReadFrame(p.read_fd, kTestMagic, 1 << 20, &f, "test");
    EXPECT_EQ(s.code(), StatusCode::kIOError) << s;
  }
  {
    // Payload shorter than the header's declared length.
    Pipe p;
    const std::vector<uint8_t> payload(100, 9);
    ASSERT_TRUE(
        WriteFrame(p.write_fd, kTestMagic, 1, payload.data(), payload.size())
            .ok());
    // Reopen the stream truncated: copy all but the last 10 bytes.
    Pipe q;
    std::vector<uint8_t> wire(16 + payload.size());
    ASSERT_EQ(::read(p.read_fd, wire.data(), wire.size()),
              static_cast<ssize_t>(wire.size()));
    ASSERT_EQ(::write(q.write_fd, wire.data(), wire.size() - 10),
              static_cast<ssize_t>(wire.size() - 10));
    q.CloseWrite();
    Frame f;
    const Status s = ReadFrame(q.read_fd, kTestMagic, 1 << 20, &f, "test");
    EXPECT_EQ(s.code(), StatusCode::kIOError) << s;
  }
  {
    // Wrong magic.
    Pipe p;
    ASSERT_TRUE(WriteFrame(p.write_fd, kTestMagic + 1, 1, nullptr, 0).ok());
    p.CloseWrite();
    Frame f;
    const Status s = ReadFrame(p.read_fd, kTestMagic, 1 << 20, &f, "test");
    EXPECT_EQ(s.code(), StatusCode::kIOError) << s;
  }
  {
    // Declared length above the cap is refused before allocation.
    Pipe p;
    const std::vector<uint8_t> payload(64, 1);
    ASSERT_TRUE(
        WriteFrame(p.write_fd, kTestMagic, 1, payload.data(), payload.size())
            .ok());
    p.CloseWrite();
    Frame f;
    const Status s = ReadFrame(p.read_fd, kTestMagic, /*max_payload=*/16, &f,
                               "test");
    EXPECT_EQ(s.code(), StatusCode::kIOError) << s;
  }
}

TEST(RequestLoopTest, RequestCodecRoundTripAndCorruption) {
  const uint64_t seed = TestSeed(7300);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset queries = synth::Blobs(50, 3, 1.0, seed, 3);
  std::vector<uint8_t> payload = EncodeClassifyRequest(queries);

  auto decoded = DecodeClassifyRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), queries.size());
  ASSERT_EQ(decoded->dim(), queries.dim());
  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t d = 0; d < queries.dim(); ++d) {
      ASSERT_EQ(decoded->point(i)[d], queries.point(i)[d]);
    }
  }

  // One flipped payload byte must fail the container checksum.
  payload[payload.size() - 1] ^= 0x40;
  auto corrupted = DecodeClassifyRequest(payload);
  EXPECT_FALSE(corrupted.ok());

  // And a payload that is not a container at all is rejected up front.
  auto garbage = DecodeClassifyRequest({1, 2, 3});
  EXPECT_FALSE(garbage.ok());
}

TEST(RequestLoopTest, ResponseCodecRoundTrip) {
  std::vector<ServeResult> results(5);
  results[0] = {7, PointKind::kCore, Certainty::kExact, 123};
  results[1] = {kNoise, PointKind::kNoise, Certainty::kApprox, 0};
  results[2] = {2, PointKind::kBorder, Certainty::kExact, 11};
  const std::vector<uint8_t> payload = EncodeClassifyResponse(results);
  auto decoded = DecodeClassifyResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ((*decoded)[i].cluster, results[i].cluster);
    EXPECT_EQ((*decoded)[i].kind, results[i].kind);
    EXPECT_EQ((*decoded)[i].certainty, results[i].certainty);
    EXPECT_EQ((*decoded)[i].density, results[i].density);
  }
}

struct Served {
  Dataset data{3};
  std::shared_ptr<const ClusterModelSnapshot> snapshot;
};

Served Freeze(uint64_t seed) {
  Served f;
  f.data = synth::Blobs(1000, 4, 1.5, seed, 3);
  RpDbscanOptions o;
  o.eps = 2.0;
  o.min_pts = 15;
  o.num_threads = 2;
  o.num_partitions = 4;
  o.capture_model = true;
  auto run = RunRpDbscan(f.data, o);
  EXPECT_TRUE(run.ok()) << run.status();
  auto snap = ClusterModelSnapshot::FromModel(std::move(*run->model));
  EXPECT_TRUE(snap.ok()) << snap.status();
  f.snapshot =
      std::make_shared<const ClusterModelSnapshot>(std::move(*snap));
  return f;
}

TEST(RequestLoopTest, ServesFramedBatchesOverSocketpair) {
  const uint64_t seed = TestSeed(7400);
  SCOPED_TRACE(SeedNote(seed));
  const Served f = Freeze(seed);
  const LabelServer server(f.snapshot);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int server_fd = fds[0];
  const int client_fd = fds[1];

  RequestLoopStats stats;
  std::thread serving([&] {
    ThreadPool pool(2);
    const Status s = ServeRequestLoop(server_fd, server_fd, server, pool,
                                      RequestLoopOptions(), &stats);
    EXPECT_TRUE(s.ok()) << s;
  });

  // Several requests on one connection, answered in order; then a
  // malformed frame (the loop must answer with an error and keep
  // serving), then shutdown.
  std::vector<ServeResult> local;
  {
    ThreadPool pool(2);
    ASSERT_TRUE(server.ClassifyBatch(f.data, pool, &local).ok());
  }
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(SendClassifyRequest(client_fd, f.data).ok());
    auto results = ReadClassifyResponse(client_fd);
    ASSERT_TRUE(results.ok()) << results.status();
    ASSERT_EQ(results->size(), local.size());
    for (size_t i = 0; i < local.size(); ++i) {
      ASSERT_EQ((*results)[i].cluster, local[i].cluster) << i;
      ASSERT_EQ((*results)[i].kind, local[i].kind) << i;
      ASSERT_EQ((*results)[i].certainty, local[i].certainty) << i;
      ASSERT_EQ((*results)[i].density, local[i].density) << i;
    }
  }
  const std::vector<uint8_t> junk = {9, 9, 9};
  ASSERT_TRUE(WriteFrame(client_fd, kServeFrameMagic, kFrameClassify,
                         junk.data(), junk.size())
                  .ok());
  auto err = ReadClassifyResponse(client_fd);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal) << err.status();

  ASSERT_TRUE(SendShutdown(client_fd).ok());
  serving.join();
  ::close(client_fd);
  ::close(server_fd);

  EXPECT_EQ(stats.requests, 4u);  // 3 good + 1 malformed
  EXPECT_EQ(stats.responses, 3u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.serve.queries, 3 * f.data.size());
  EXPECT_EQ(stats.latency.seen(), 3 * f.data.size());
  const LatencySummary lat = stats.latency.Summarize();
  EXPECT_GT(lat.max_us, 0.0);
  EXPECT_LE(lat.p50_us, lat.p999_us);
}

TEST(RequestLoopTest, CleanHangupEndsTheLoop) {
  const uint64_t seed = TestSeed(7500);
  SCOPED_TRACE(SeedNote(seed));
  const Served f = Freeze(seed);
  const LabelServer server(f.snapshot);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);  // the client vanishes without a shutdown frame
  ThreadPool pool(2);
  const Status s = ServeRequestLoop(fds[0], fds[0], server, pool);
  EXPECT_TRUE(s.ok()) << s;  // hangup between frames is a normal exit
  ::close(fds[0]);
}

}  // namespace
}  // namespace rpdbscan
