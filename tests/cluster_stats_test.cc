#include "metrics/cluster_stats.h"

#include <gtest/gtest.h>

namespace rpdbscan {
namespace {

TEST(SummarizeTest, CountsClustersAndNoise) {
  const Labels labels = {0, 0, 1, kNoise, 1, 1, kNoise};
  const ClusterSummary s = Summarize(labels);
  EXPECT_EQ(s.num_points, 7u);
  EXPECT_EQ(s.num_clusters, 2u);
  EXPECT_EQ(s.num_noise, 2u);
  ASSERT_EQ(s.sizes.size(), 2u);
  EXPECT_EQ(s.sizes[0], 3u);  // descending
  EXPECT_EQ(s.sizes[1], 2u);
  EXPECT_EQ(s.LargestCluster(), 3u);
}

TEST(SummarizeTest, AllNoise) {
  const Labels labels = {kNoise, kNoise};
  const ClusterSummary s = Summarize(labels);
  EXPECT_EQ(s.num_clusters, 0u);
  EXPECT_EQ(s.num_noise, 2u);
  EXPECT_EQ(s.LargestCluster(), 0u);
}

TEST(SummarizeTest, EmptyLabels) {
  const ClusterSummary s = Summarize({});
  EXPECT_EQ(s.num_points, 0u);
  EXPECT_EQ(s.num_clusters, 0u);
}

TEST(SummarizeTest, NonContiguousIdsCounted) {
  const Labels labels = {42, 42, 1000, 7};
  const ClusterSummary s = Summarize(labels);
  EXPECT_EQ(s.num_clusters, 3u);
}

TEST(SummarizeTest, ToStringMentionsCounts) {
  const Labels labels = {0, 0, kNoise};
  const std::string str = Summarize(labels).ToString();
  EXPECT_NE(str.find("3 points"), std::string::npos);
  EXPECT_NE(str.find("1 clusters"), std::string::npos);
  EXPECT_NE(str.find("1 noise"), std::string::npos);
}

}  // namespace
}  // namespace rpdbscan
