#include "core/rp_dbscan.h"

#include <gtest/gtest.h>

#include "baselines/exact_dbscan.h"
#include "metrics/cluster_stats.h"
#include "metrics/rand_index.h"
#include "synth/generators.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

RpDbscanOptions Opts(double eps, size_t min_pts, double rho = 0.01) {
  RpDbscanOptions o;
  o.eps = eps;
  o.min_pts = min_pts;
  o.rho = rho;
  o.num_threads = 2;
  o.num_partitions = 8;
  return o;
}

double RandVsExact(const Dataset& ds, double eps, size_t min_pts,
                   double rho) {
  auto rp = RunRpDbscan(ds, Opts(eps, min_pts, rho));
  EXPECT_TRUE(rp.ok()) << rp.status();
  auto exact = RunExactDbscan(ds, DbscanParams{eps, min_pts});
  EXPECT_TRUE(exact.ok()) << exact.status();
  auto ri = RandIndex(rp->labels, exact->labels);
  EXPECT_TRUE(ri.ok());
  return *ri;
}

TEST(RpDbscanTest, RejectsInvalidOptions) {
  const Dataset ds = synth::Blobs(100, 2, 1.0, 1);
  EXPECT_FALSE(RunRpDbscan(ds, Opts(0.0, 10)).ok());     // eps
  EXPECT_FALSE(RunRpDbscan(ds, Opts(-1.0, 10)).ok());    // eps
  EXPECT_FALSE(RunRpDbscan(ds, Opts(1.0, 0)).ok());      // min_pts
  EXPECT_FALSE(RunRpDbscan(ds, Opts(1.0, 10, 0.0)).ok());   // rho
  EXPECT_FALSE(RunRpDbscan(ds, Opts(1.0, 10, 1.5)).ok());   // rho
  const Dataset empty(2);
  EXPECT_FALSE(RunRpDbscan(empty, Opts(1.0, 10)).ok());
}

TEST(RpDbscanTest, MatchesExactDbscanOnBlobs) {
  const Dataset ds = synth::Blobs(5000, 6, 1.0, 21);
  EXPECT_GE(RandVsExact(ds, 1.0, 20, 0.01), 0.999);
}

TEST(RpDbscanTest, MatchesExactDbscanOnMoons) {
  const Dataset ds = synth::Moons(4000, 0.05, 22);
  EXPECT_GE(RandVsExact(ds, 0.08, 10, 0.01), 0.995);
}

TEST(RpDbscanTest, MatchesExactDbscanOnChameleon) {
  const Dataset ds = synth::ChameleonLike(6000, 23);
  EXPECT_GE(RandVsExact(ds, 1.5, 12, 0.01), 0.99);
}

TEST(RpDbscanTest, AccuracyDegradesGracefullyWithRho) {
  // Table 4: even rho = 0.10 keeps the Rand index above 0.98.
  const Dataset ds = synth::Blobs(4000, 5, 1.0, 24);
  EXPECT_GE(RandVsExact(ds, 1.0, 20, 0.10), 0.98);
  EXPECT_GE(RandVsExact(ds, 1.0, 20, 0.05), 0.98);
}

TEST(RpDbscanTest, FindsTheRightNumberOfBlobClusters) {
  const Dataset ds = synth::Blobs(6000, 7, 0.8, 25);
  auto rp = RunRpDbscan(ds, Opts(1.0, 20));
  ASSERT_TRUE(rp.ok());
  const ClusterSummary s = Summarize(rp->labels);
  EXPECT_EQ(s.num_clusters, 7u);
}

TEST(RpDbscanTest, ResultIndependentOfPartitionCount) {
  const Dataset ds = synth::Blobs(3000, 4, 1.0, 26);
  RpDbscanOptions a = Opts(1.0, 15);
  a.num_partitions = 1;
  RpDbscanOptions b = Opts(1.0, 15);
  b.num_partitions = 32;
  auto ra = RunRpDbscan(ds, a);
  auto rb = RunRpDbscan(ds, b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  auto ri = RandIndex(ra->labels, rb->labels);
  ASSERT_TRUE(ri.ok());
  EXPECT_DOUBLE_EQ(*ri, 1.0);
}

TEST(RpDbscanTest, ResultIndependentOfSeed) {
  const Dataset ds = synth::Blobs(3000, 4, 1.0, 27);
  RpDbscanOptions a = Opts(1.0, 15);
  a.seed = 1;
  RpDbscanOptions b = Opts(1.0, 15);
  b.seed = 999;
  auto ra = RunRpDbscan(ds, a);
  auto rb = RunRpDbscan(ds, b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  auto ri = RandIndex(ra->labels, rb->labels);
  ASSERT_TRUE(ri.ok());
  EXPECT_DOUBLE_EQ(*ri, 1.0);
}

TEST(RpDbscanTest, AblationTogglesPreserveClustering) {
  const Dataset ds = synth::Blobs(3000, 4, 1.0, 28);
  auto base = RunRpDbscan(ds, Opts(1.0, 15));
  ASSERT_TRUE(base.ok());
  for (const int knob : {0, 1, 2, 3, 4}) {
    RpDbscanOptions o = Opts(1.0, 15);
    if (knob == 0) o.defragment_dictionary = false;
    if (knob == 1) o.subdictionary_skipping = false;
    if (knob == 2) o.reduce_edges = false;
    if (knob == 3) o.use_rtree_index = true;
    if (knob == 4) o.simulate_broadcast = false;
    auto r = RunRpDbscan(ds, o);
    ASSERT_TRUE(r.ok());
    auto ri = RandIndex(base->labels, r->labels);
    ASSERT_TRUE(ri.ok());
    EXPECT_DOUBLE_EQ(*ri, 1.0) << "knob " << knob;
  }
}

TEST(RpDbscanTest, StatsArePopulated) {
  const Dataset ds = synth::Blobs(3000, 4, 1.0, 29);
  auto r = RunRpDbscan(ds, Opts(1.0, 15));
  ASSERT_TRUE(r.ok());
  const RunStats& s = r->stats;
  EXPECT_GT(s.num_cells, 0u);
  EXPECT_GE(s.num_subcells, s.num_cells);
  EXPECT_GT(s.dictionary_bytes, 0u);
  EXPECT_GT(s.num_core_cells, 0u);
  EXPECT_EQ(s.phase2_task_seconds.size(), 8u);
  EXPECT_GE(s.edges_per_round.size(), 2u);
  EXPECT_GT(s.total_seconds, 0.0);
  EXPECT_GE(s.total_seconds, s.phase2_seconds);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(RpDbscanTest, NoiseOnlyDataset) {
  // Sparse uniform points, high min_pts: everything is noise.
  Rng rng(30);
  Dataset ds(2);
  for (int i = 0; i < 500; ++i) {
    ds.Append({static_cast<float>(rng.UniformDouble(0, 100)),
               static_cast<float>(rng.UniformDouble(0, 100))});
  }
  auto r = RunRpDbscan(ds, Opts(0.5, 50));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.num_clusters, 0u);
  EXPECT_EQ(r->stats.num_noise_points, ds.size());
}

TEST(RpDbscanTest, SingleDenseClusterEverythingLabeled) {
  const Dataset ds = synth::Blobs(2000, 1, 0.5, 31);
  auto r = RunRpDbscan(ds, Opts(1.0, 10));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.num_clusters, 1u);
  EXPECT_LT(r->stats.num_noise_points, ds.size() / 100);
}

TEST(RpDbscanTest, BitwiseDeterministicAcrossRuns) {
  const Dataset ds = synth::Blobs(3000, 4, 1.0, 36);
  const RpDbscanOptions o = Opts(1.0, 15);
  auto a = RunRpDbscan(ds, o);
  auto b = RunRpDbscan(ds, o);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);  // exact, not just Rand index 1
  EXPECT_EQ(a->stats.edges_per_round, b->stats.edges_per_round);
}

TEST(RpDbscanTest, LabelsIndependentOfThreadCount) {
  // Thread count changes execution interleaving only; every phase is
  // deterministic, so labels must match bit for bit.
  const Dataset ds = synth::Blobs(3000, 4, 1.0, 37);
  RpDbscanOptions one = Opts(1.0, 15);
  one.num_threads = 1;
  RpDbscanOptions four = Opts(1.0, 15);
  four.num_threads = 4;
  auto a = RunRpDbscan(ds, one);
  auto b = RunRpDbscan(ds, four);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->labels, b->labels);
  EXPECT_EQ(a->stats.num_clusters, b->stats.num_clusters);
}

TEST(RpDbscanTest, SinglePointDataset) {
  Dataset ds(2);
  ds.Append({1, 1});
  auto lone = RunRpDbscan(ds, Opts(1.0, 2));
  ASSERT_TRUE(lone.ok());
  EXPECT_EQ(lone->labels[0], kNoise);
  auto self_cluster = RunRpDbscan(ds, Opts(1.0, 1));
  ASSERT_TRUE(self_cluster.ok());
  EXPECT_NE(self_cluster->labels[0], kNoise);
  EXPECT_EQ(self_cluster->stats.num_clusters, 1u);
}

TEST(RpDbscanTest, AllIdenticalPoints) {
  Dataset ds(3);
  for (int i = 0; i < 200; ++i) ds.Append({7, 7, 7});
  auto r = RunRpDbscan(ds, Opts(0.5, 50));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.num_clusters, 1u);
  EXPECT_EQ(r->stats.num_cells, 1u);
  EXPECT_EQ(r->stats.num_subcells, 1u);
  for (const int64_t l : r->labels) EXPECT_EQ(l, r->labels[0]);
  EXPECT_NE(r->labels[0], kNoise);
}

TEST(RpDbscanTest, NegativeCoordinatesWork) {
  Rng rng(33);
  Dataset ds(2);
  for (int i = 0; i < 2000; ++i) {
    ds.Append({static_cast<float>(-50 + 2 * rng.Normal()),
               static_cast<float>(-50 + 2 * rng.Normal())});
  }
  auto r = RunRpDbscan(ds, Opts(1.0, 10));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.num_clusters, 1u);
}

TEST(RpDbscanTest, MinPtsLargerThanDataset) {
  const Dataset ds = synth::Blobs(100, 1, 0.5, 34);
  auto r = RunRpDbscan(ds, Opts(1.0, 1000));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.num_clusters, 0u);
  EXPECT_EQ(r->stats.num_noise_points, ds.size());
}

TEST(RpDbscanTest, BroadcastBytesReportedWhenSimulated) {
  const Dataset ds = synth::Blobs(1000, 2, 1.0, 35);
  RpDbscanOptions on = Opts(1.0, 10);
  on.simulate_broadcast = true;
  RpDbscanOptions off = Opts(1.0, 10);
  off.simulate_broadcast = false;
  auto r_on = RunRpDbscan(ds, on);
  auto r_off = RunRpDbscan(ds, off);
  ASSERT_TRUE(r_on.ok());
  ASSERT_TRUE(r_off.ok());
  EXPECT_GT(r_on->stats.broadcast_bytes, 0u);
  EXPECT_EQ(r_off->stats.broadcast_bytes, 0u);
  // Wire size stays within a few percent of the Lemma 4.3 accounting.
  EXPECT_LT(r_on->stats.broadcast_bytes,
            r_on->stats.dictionary_bytes * 115 / 100);
}

TEST(RpDbscanTest, HighDimensionalData) {
  const Dataset ds = synth::TeraLike(2000, 32);
  auto r = RunRpDbscan(ds, Opts(20.0, 10));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.num_clusters, 0u);
}

}  // namespace
}  // namespace rpdbscan
