#include "io/dataset.h"

#include <gtest/gtest.h>

namespace rpdbscan {
namespace {

TEST(DatasetTest, EmptyAfterConstruction) {
  Dataset ds(3);
  EXPECT_EQ(ds.dim(), 3u);
  EXPECT_EQ(ds.size(), 0u);
  EXPECT_TRUE(ds.empty());
}

TEST(DatasetTest, ZeroDimClampedToOne) {
  Dataset ds(0);
  EXPECT_EQ(ds.dim(), 1u);
}

TEST(DatasetTest, AppendAndAccess) {
  Dataset ds(2);
  ds.Append({1.0f, 2.0f});
  ds.Append({3.0f, 4.0f});
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_FLOAT_EQ(ds.point(0)[0], 1.0f);
  EXPECT_FLOAT_EQ(ds.point(0)[1], 2.0f);
  EXPECT_FLOAT_EQ(ds.point(1)[0], 3.0f);
  EXPECT_FLOAT_EQ(ds.point(1)[1], 4.0f);
}

TEST(DatasetTest, AppendFromPointer) {
  Dataset ds(3);
  const float p[3] = {7, 8, 9};
  ds.Append(p);
  EXPECT_EQ(ds.size(), 1u);
  EXPECT_FLOAT_EQ(ds.point(0)[2], 9.0f);
}

TEST(DatasetTest, MutablePoint) {
  Dataset ds(2);
  ds.Append({0.0f, 0.0f});
  ds.mutable_point(0)[1] = 5.0f;
  EXPECT_FLOAT_EQ(ds.point(0)[1], 5.0f);
}

TEST(DatasetTest, FromFlatValid) {
  auto ds = Dataset::FromFlat(2, {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 3u);
  EXPECT_FLOAT_EQ(ds->point(2)[1], 6.0f);
}

TEST(DatasetTest, FromFlatRejectsBadArity) {
  auto ds = Dataset::FromFlat(2, {1, 2, 3});
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, FromFlatRejectsZeroDim) {
  auto ds = Dataset::FromFlat(0, {});
  ASSERT_FALSE(ds.ok());
}

TEST(DatasetTest, PayloadBytes) {
  Dataset ds(4);
  ds.Append({1, 2, 3, 4});
  ds.Append({5, 6, 7, 8});
  EXPECT_EQ(ds.PayloadBytes(), 2 * 4 * sizeof(float));
}

TEST(DatasetDeathTest, AppendArityMismatchAborts) {
  Dataset ds(2);
  EXPECT_DEATH(ds.Append({1.0f, 2.0f, 3.0f}), "arity");
}

TEST(DistanceSquaredTest, KnownValues) {
  const float a[3] = {0, 0, 0};
  const float b[3] = {3, 4, 0};
  EXPECT_DOUBLE_EQ(DistanceSquared(a, b, 3), 25.0);
  EXPECT_DOUBLE_EQ(DistanceSquared(a, a, 3), 0.0);
}

TEST(DistanceSquaredTest, IsSymmetric) {
  const float a[2] = {1.5f, -2.0f};
  const float b[2] = {-0.5f, 7.0f};
  EXPECT_DOUBLE_EQ(DistanceSquared(a, b, 2), DistanceSquared(b, a, 2));
}

}  // namespace
}  // namespace rpdbscan
