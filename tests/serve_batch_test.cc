// The bit-identity contract of batched classification: ClassifyBatch —
// whichever path it takes (grouped stencil walk, per-query fallback,
// scalar or SIMD kernels, any thread count, any batch size) — returns
// exactly what serial Classify returns, query by query.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/rp_dbscan.h"
#include "parallel/thread_pool.h"
#include "serve/label_server.h"
#include "serve/snapshot.h"
#include "synth/generators.h"
#include "test_seed.h"

namespace rpdbscan {
namespace {

std::shared_ptr<const ClusterModelSnapshot> Load(
    const std::vector<uint8_t>& bytes, bool stencil) {
  SnapshotOptions sopts;
  sopts.dict_opts.build_stencil = stencil;
  auto loaded = ClusterModelSnapshot::Deserialize(bytes, sopts);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->dictionary().has_stencil(), stencil);
  return std::make_shared<const ClusterModelSnapshot>(std::move(*loaded));
}

struct Trained {
  Dataset data{3};
  std::vector<uint8_t> snapshot_bytes;
};

Trained Train(uint64_t seed) {
  Trained t;
  t.data = synth::Blobs(1200, 4, 1.5, seed, 3);
  RpDbscanOptions o;
  o.eps = 2.0;
  o.min_pts = 15;
  o.num_threads = 2;
  o.num_partitions = 4;
  o.capture_model = true;
  auto run = RunRpDbscan(t.data, o);
  EXPECT_TRUE(run.ok()) << run.status();
  auto snap = ClusterModelSnapshot::FromModel(std::move(*run->model));
  EXPECT_TRUE(snap.ok()) << snap.status();
  t.snapshot_bytes = snap->Serialize();
  return t;
}

/// A query mix exercising every serving branch: training points (all home
/// hits), jittered near-misses (some hit, some miss), and far outliers
/// (guaranteed home-cell misses, i.e. singleton groups on the grouped
/// path).
Dataset MixedQueries(const Dataset& training, size_t count) {
  Dataset q(training.dim());
  for (size_t i = 0; i < count && i < training.size(); ++i) {
    if (i % 3 == 0) {
      q.Append(training.point(i));
    } else if (i % 3 == 1) {
      std::vector<float> p(training.point(i),
                           training.point(i) + training.dim());
      for (float& v : p) v += 0.37f;
      q.Append(p.data());
    } else {
      std::vector<float> p(training.point(i),
                           training.point(i) + training.dim());
      for (size_t d = 0; d < p.size(); ++d) {
        p[d] += 500.0f + static_cast<float>(i % 7) * 31.0f +
                static_cast<float>(d) * 11.0f;
      }
      q.Append(p.data());
    }
  }
  return q;
}

Dataset Slice(const Dataset& q, size_t begin, size_t count) {
  Dataset out(q.dim());
  for (size_t i = begin; i < begin + count && i < q.size(); ++i) {
    out.Append(q.point(i));
  }
  return out;
}

void ExpectSame(const ServeResult& got, const ServeResult& want,
                const std::string& what) {
  ASSERT_EQ(got.cluster, want.cluster) << what;
  ASSERT_EQ(got.kind, want.kind) << what;
  ASSERT_EQ(got.certainty, want.certainty) << what;
  ASSERT_EQ(got.density, want.density) << what;
}

TEST(ServeBatchTest, BatchBitIdenticalToSerialEverywhere) {
  const uint64_t seed = TestSeed(6800);
  SCOPED_TRACE(SeedNote(seed));
  const Trained t = Train(seed);
  const Dataset queries = MixedQueries(t.data, 300);

  for (const bool stencil : {true, false}) {
    SCOPED_TRACE(stencil ? "stencil engine" : "tree fallback engine");
    const auto snapshot = Load(t.snapshot_bytes, stencil);
    for (const bool scalar : {false, true}) {
      SCOPED_TRACE(scalar ? "scalar kernels" : "simd kernels");
      LabelServerOptions o;
      o.scalar_kernels = scalar;
      const LabelServer server(snapshot, o);

      std::vector<ServeResult> serial(queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        serial[i] = server.Classify(queries.point(i));
      }

      for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ThreadPool pool(threads);
        // Batch sizes cover the edges: empty, single, odd sizes that
        // leave lane remainders and partial groups, and the full set.
        for (const size_t batch :
             {size_t{0}, size_t{1}, size_t{3}, size_t{17}, queries.size()}) {
          SCOPED_TRACE("batch=" + std::to_string(batch));
          const Dataset sub = Slice(queries, 0, batch);
          std::vector<ServeResult> got;
          const Status s = server.ClassifyBatch(sub, pool, &got);
          ASSERT_TRUE(s.ok()) << s;
          ASSERT_EQ(got.size(), sub.size());
          for (size_t i = 0; i < got.size(); ++i) {
            ExpectSame(got[i], serial[i], "query " + std::to_string(i));
          }
        }
      }
    }
  }
}

TEST(ServeBatchTest, ClassifyEachMatchesClassifyBatch) {
  const uint64_t seed = TestSeed(6900);
  SCOPED_TRACE(SeedNote(seed));
  const Trained t = Train(seed);
  const Dataset queries = MixedQueries(t.data, 200);
  const LabelServer server(Load(t.snapshot_bytes, /*stencil=*/true));
  ThreadPool pool(2);

  std::vector<ServeResult> each;
  std::vector<ServeResult> batch;
  ServeStats each_stats;
  ServeStats batch_stats;
  ASSERT_TRUE(server.ClassifyEach(queries, pool, &each, &each_stats).ok());
  ASSERT_TRUE(server.ClassifyBatch(queries, pool, &batch, &batch_stats).ok());
  ASSERT_EQ(each.size(), batch.size());
  for (size_t i = 0; i < each.size(); ++i) {
    ExpectSame(batch[i], each[i], "query " + std::to_string(i));
  }
  // Semantic counters agree across paths; the probe counters follow each
  // path's own accounting (documented on ServeStats).
  EXPECT_EQ(each_stats.queries, batch_stats.queries);
  EXPECT_EQ(each_stats.cell_hits, batch_stats.cell_hits);
  EXPECT_EQ(each_stats.exact, batch_stats.exact);
  EXPECT_EQ(each_stats.core, batch_stats.core);
  EXPECT_EQ(each_stats.border, batch_stats.border);
  EXPECT_EQ(each_stats.noise, batch_stats.noise);
  EXPECT_EQ(each_stats.border_ref_scans, batch_stats.border_ref_scans);
}

TEST(ServeBatchTest, GroupingToggleChangesNothing) {
  const uint64_t seed = TestSeed(7000);
  SCOPED_TRACE(SeedNote(seed));
  const Trained t = Train(seed);
  const Dataset queries = MixedQueries(t.data, 200);
  const auto snapshot = Load(t.snapshot_bytes, /*stencil=*/true);

  LabelServerOptions grouped_opts;
  grouped_opts.grouped_batches = true;
  LabelServerOptions ungrouped_opts;
  ungrouped_opts.grouped_batches = false;
  const LabelServer grouped(snapshot, grouped_opts);
  const LabelServer ungrouped(snapshot, ungrouped_opts);

  ThreadPool pool(2);
  std::vector<ServeResult> a;
  std::vector<ServeResult> b;
  ASSERT_TRUE(grouped.ClassifyBatch(queries, pool, &a).ok());
  ASSERT_TRUE(ungrouped.ClassifyBatch(queries, pool, &b).ok());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ExpectSame(a[i], b[i], "query " + std::to_string(i));
  }
}

TEST(ServeBatchTest, BatchLatencySamplesOnePerQuery) {
  const uint64_t seed = TestSeed(7100);
  SCOPED_TRACE(SeedNote(seed));
  const Trained t = Train(seed);
  const Dataset queries = MixedQueries(t.data, 150);
  const LabelServer server(Load(t.snapshot_bytes, /*stencil=*/true));
  ThreadPool pool(2);

  std::vector<ServeResult> out;
  LatencyReservoir latency;
  ASSERT_TRUE(
      server.ClassifyBatch(queries, pool, &out, nullptr, &latency).ok());
  EXPECT_EQ(latency.seen(), queries.size());
  const LatencySummary s = latency.Summarize();
  EXPECT_EQ(s.samples, queries.size());
  EXPECT_GT(s.max_us, 0.0);
  EXPECT_LE(s.p50_us, s.p99_us);
  EXPECT_LE(s.p99_us, s.p999_us);
  EXPECT_LE(s.p999_us, s.max_us);
}

TEST(ServeBatchTest, DimensionMismatchRejected) {
  const uint64_t seed = TestSeed(7200);
  SCOPED_TRACE(SeedNote(seed));
  const Trained t = Train(seed);
  const LabelServer server(Load(t.snapshot_bytes, /*stencil=*/true));
  ThreadPool pool(2);
  const Dataset wrong = synth::Blobs(10, 2, 1.0, seed, 2);
  std::vector<ServeResult> out;
  EXPECT_FALSE(server.ClassifyBatch(wrong, pool, &out).ok());
  EXPECT_FALSE(server.ClassifyEach(wrong, pool, &out).ok());
}

}  // namespace
}  // namespace rpdbscan
