#include "parallel/cluster_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace rpdbscan {
namespace {

TEST(LoadImbalanceTest, PerfectBalanceIsOne) {
  EXPECT_DOUBLE_EQ(LoadImbalance({1.0, 1.0, 1.0, 1.0}), 1.0);
}

TEST(LoadImbalanceTest, RatioOfSlowestToFastest) {
  EXPECT_DOUBLE_EQ(LoadImbalance({2.0, 1.0, 8.0}), 8.0);
}

TEST(LoadImbalanceTest, DegenerateInputsReturnOne) {
  EXPECT_DOUBLE_EQ(LoadImbalance({}), 1.0);
  EXPECT_DOUBLE_EQ(LoadImbalance({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(LoadImbalance({0.0, 1.0}), 1.0);  // guard against /0
}

TEST(LoadImbalanceTest, IgnoresNonFiniteAndNegativeTimes) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // NaN / Inf / negative entries are timer glitches, not skew: they drop
  // out and the ratio is computed over the remaining finite tasks.
  EXPECT_DOUBLE_EQ(LoadImbalance({nan, 2.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(LoadImbalance({inf, 4.0, 1.0}), 4.0);
  EXPECT_DOUBLE_EQ(LoadImbalance({-3.0, 6.0, 2.0}), 3.0);
  // Result must never be NaN, even for all-bad input.
  EXPECT_DOUBLE_EQ(LoadImbalance({nan, nan}), 1.0);
  EXPECT_DOUBLE_EQ(LoadImbalance({nan, 5.0}), 1.0);  // one finite task
  EXPECT_FALSE(std::isnan(LoadImbalance({nan, inf, -inf})));
}

TEST(PerStageImbalanceTest, OneEntryPerStageInOrder) {
  const std::vector<StageTaskTimes> stages = {
      {"phase2", {1.0, 2.0, 4.0}},
      {"merge", {3.0, 3.0}},
      {"empty", {}},
  };
  const auto per = PerStageImbalance(stages);
  ASSERT_EQ(per.size(), 3u);
  EXPECT_EQ(per[0].stage_name, "phase2");
  EXPECT_DOUBLE_EQ(per[0].imbalance, 4.0);
  EXPECT_EQ(per[1].stage_name, "merge");
  EXPECT_DOUBLE_EQ(per[1].imbalance, 1.0);
  EXPECT_DOUBLE_EQ(per[2].imbalance, 1.0);
}

TEST(MakespanTest, SingleWorkerSumsTasks) {
  EXPECT_DOUBLE_EQ(MakespanForWorkers({1.0, 2.0, 3.0}, 1), 6.0);
}

TEST(MakespanTest, EnoughWorkersGivesMaxTask) {
  EXPECT_DOUBLE_EQ(MakespanForWorkers({1.0, 2.0, 3.0}, 3), 3.0);
  EXPECT_DOUBLE_EQ(MakespanForWorkers({1.0, 2.0, 3.0}, 10), 3.0);
}

TEST(MakespanTest, GreedyListScheduling) {
  // Tasks placed in order on the earliest-free worker:
  //   w0: 4        -> 4
  //   w1: 3, 1     -> 4
  // makespan 4 (vs 8 on one worker).
  EXPECT_DOUBLE_EQ(MakespanForWorkers({4.0, 3.0, 1.0}, 2), 4.0);
}

TEST(MakespanTest, ZeroWorkersClampedToOne) {
  EXPECT_DOUBLE_EQ(MakespanForWorkers({2.0, 2.0}, 0), 4.0);
}

TEST(MakespanTest, EmptyTasksIsZero) {
  EXPECT_DOUBLE_EQ(MakespanForWorkers({}, 4), 0.0);
}

TEST(MakespanTest, MoreWorkersNeverSlower) {
  const std::vector<double> tasks = {5, 1, 4, 2, 2, 3, 7, 1, 1, 2};
  double prev = MakespanForWorkers(tasks, 1);
  for (size_t w = 2; w <= 12; ++w) {
    const double m = MakespanForWorkers(tasks, w);
    EXPECT_LE(m, prev + 1e-12);
    prev = m;
  }
}

TEST(SpeedupSeriesTest, BaselineIsOne) {
  const std::vector<double> tasks(40, 1.0);
  const auto s = SpeedupSeries(tasks, 5, {5, 10, 20, 40});
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  // Perfectly uniform tasks: doubling workers doubles speed-up.
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_DOUBLE_EQ(s[2], 4.0);
  EXPECT_DOUBLE_EQ(s[3], 8.0);
}

TEST(SpeedupSeriesTest, SkewedTasksSaturate) {
  // One dominant task bounds the speed-up.
  std::vector<double> tasks(16, 0.1);
  tasks[0] = 10.0;
  const auto s = SpeedupSeries(tasks, 1, {16});
  EXPECT_LT(s[0], 1.2);
}

}  // namespace
}  // namespace rpdbscan
