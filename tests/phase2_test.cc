#include "core/phase2.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/exact_dbscan.h"
#include "synth/generators.h"

namespace rpdbscan {
namespace {

struct Pipeline {
  Dataset data{2};
  GridGeometry geom;
  StatusOr<CellSet> cells = Status::Internal("unset");
  StatusOr<CellDictionary> dict = Status::Internal("unset");

  Pipeline(Dataset ds, double eps, double rho, size_t parts)
      : data(std::move(ds)) {
    auto g = GridGeometry::Create(data.dim(), eps, rho);
    EXPECT_TRUE(g.ok());
    geom = *g;
    cells = CellSet::Build(data, geom, parts, 7);
    EXPECT_TRUE(cells.ok());
    dict = CellDictionary::Build(data, *cells);
    EXPECT_TRUE(dict.ok());
  }
};

TEST(Phase2Test, OneSubgraphPerPartition) {
  Pipeline p(synth::Blobs(2000, 3, 1.5, 1), 1.0, 0.01, 6);
  ThreadPool pool(2);
  const Phase2Result r = BuildSubgraphs(p.data, *p.cells, *p.dict, 10, pool);
  EXPECT_EQ(r.subgraphs.size(), 6u);
  EXPECT_EQ(r.task_seconds.size(), 6u);
  EXPECT_EQ(r.point_is_core.size(), p.data.size());
  EXPECT_EQ(r.cell_is_core.size(), p.cells->num_cells());
}

TEST(Phase2Test, OwnedCellsMatchPartitions) {
  Pipeline p(synth::Blobs(2000, 3, 1.5, 2), 1.0, 0.01, 5);
  ThreadPool pool(2);
  const Phase2Result r = BuildSubgraphs(p.data, *p.cells, *p.dict, 10, pool);
  for (uint32_t pid = 0; pid < 5; ++pid) {
    std::set<uint32_t> expect(p.cells->partition(pid).begin(),
                              p.cells->partition(pid).end());
    std::set<uint32_t> got;
    for (const auto& [cid, type] : r.subgraphs[pid].owned) {
      got.insert(cid);
      EXPECT_NE(type, CellType::kUndetermined);
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(Phase2Test, CoreFlagsMatchExactDbscanUpToApproximation) {
  // With rho = 0.01 the (eps,rho)-count is within a whisker of the exact
  // neighborhood count; on well-separated blobs core sets coincide.
  Pipeline p(synth::Blobs(3000, 3, 1.0, 3), 1.0, 0.01, 4);
  ThreadPool pool(2);
  const Phase2Result r = BuildSubgraphs(p.data, *p.cells, *p.dict, 20, pool);
  auto exact = RunExactDbscan(p.data, DbscanParams{1.0, 20});
  ASSERT_TRUE(exact.ok());
  size_t diff = 0;
  for (size_t i = 0; i < p.data.size(); ++i) {
    if (r.point_is_core[i] != exact->point_is_core[i]) ++diff;
  }
  EXPECT_LT(static_cast<double>(diff), 0.01 * p.data.size());
}

TEST(Phase2Test, CoreCellIffHasCorePoint) {
  Pipeline p(synth::Blobs(2000, 3, 1.5, 4), 1.0, 0.05, 4);
  ThreadPool pool(2);
  const Phase2Result r = BuildSubgraphs(p.data, *p.cells, *p.dict, 15, pool);
  for (uint32_t cid = 0; cid < p.cells->num_cells(); ++cid) {
    bool has_core = false;
    for (const uint32_t pid : p.cells->cell(cid).point_ids) {
      has_core |= r.point_is_core[pid] != 0;
    }
    EXPECT_EQ(r.cell_is_core[cid] != 0, has_core) << "cell " << cid;
  }
}

TEST(Phase2Test, EdgesOriginateFromCoreCellsOnly) {
  Pipeline p(synth::Blobs(2000, 3, 1.5, 5), 1.0, 0.05, 4);
  ThreadPool pool(2);
  const Phase2Result r = BuildSubgraphs(p.data, *p.cells, *p.dict, 15, pool);
  for (const CellSubgraph& g : r.subgraphs) {
    for (const CellEdge& e : g.edges) {
      EXPECT_NE(e.from, e.to) << "self edge";
      EXPECT_EQ(r.cell_is_core[e.from], 1) << "edge from non-core cell";
      EXPECT_EQ(e.type, EdgeType::kUndetermined);
    }
  }
}

TEST(Phase2Test, EdgesAreDeduplicatedPerCell) {
  Pipeline p(synth::Blobs(3000, 2, 1.0, 6), 1.5, 0.05, 3);
  ThreadPool pool(2);
  const Phase2Result r = BuildSubgraphs(p.data, *p.cells, *p.dict, 10, pool);
  for (const CellSubgraph& g : r.subgraphs) {
    std::set<std::pair<uint32_t, uint32_t>> seen;
    for (const CellEdge& e : g.edges) {
      EXPECT_TRUE(seen.insert({e.from, e.to}).second)
          << "duplicate edge " << e.from << "->" << e.to;
    }
  }
}

TEST(Phase2Test, HighMinPtsYieldsNoCores) {
  Pipeline p(synth::Blobs(500, 2, 2.0, 7), 0.5, 0.05, 3);
  ThreadPool pool(2);
  const Phase2Result r =
      BuildSubgraphs(p.data, *p.cells, *p.dict, 1000000, pool);
  for (const uint8_t c : r.cell_is_core) EXPECT_EQ(c, 0);
  for (const CellSubgraph& g : r.subgraphs) EXPECT_TRUE(g.edges.empty());
}

TEST(Phase2Test, MinPtsOneMakesEveryPointCore) {
  Pipeline p(synth::Blobs(500, 2, 2.0, 8), 0.5, 0.05, 3);
  ThreadPool pool(2);
  const Phase2Result r = BuildSubgraphs(p.data, *p.cells, *p.dict, 1, pool);
  for (const uint8_t c : r.point_is_core) EXPECT_EQ(c, 1);
}

TEST(Phase2Test, SkippingStatsAccumulated) {
  Pipeline p(synth::Blobs(2000, 4, 1.0, 9), 1.0, 0.05, 4);
  ThreadPool pool(2);
  // Lemma 5.10 accounting only exists on the tree path: the stencil
  // engine (the default) never descends sub-dictionaries and reports
  // probe/hit counters instead (covered by stencil_query_test).
  Phase2Options opts;
  opts.stencil_queries = false;
  const Phase2Result r =
      BuildSubgraphs(p.data, *p.cells, *p.dict, 10, pool, opts);
  EXPECT_GT(r.subdict_possible, 0u);
  EXPECT_LE(r.subdict_visited, r.subdict_possible);
}

}  // namespace
}  // namespace rpdbscan
