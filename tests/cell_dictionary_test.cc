#include "core/cell_dictionary.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "synth/generators.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

struct Fixture {
  Dataset data{2};
  GridGeometry geom;
  StatusOr<CellSet> cells = Status::Internal("unset");

  Fixture(Dataset ds, double eps, double rho, size_t parts = 4)
      : data(std::move(ds)) {
    auto g = GridGeometry::Create(data.dim(), eps, rho);
    EXPECT_TRUE(g.ok());
    geom = *g;
    cells = CellSet::Build(data, geom, parts, 7);
    EXPECT_TRUE(cells.ok());
  }
};

// Reference (eps,rho)-region query: for every point, recompute every
// sub-cell center from raw points and sum densities of centers within eps.
// Mirrors Def. 5.1 with no indexing, no skipping, no containment fast path.
std::map<uint32_t, uint32_t> BruteQuery(const Fixture& f, const float* q) {
  std::map<uint32_t, uint32_t> per_cell;
  const double eps2 = f.geom.eps() * f.geom.eps();
  for (uint32_t cid = 0; cid < f.cells->num_cells(); ++cid) {
    const CellData& cell = f.cells->cell(cid);
    // Histogram sub-cells of this cell.
    std::map<std::pair<uint64_t, uint64_t>, uint32_t> hist;
    std::map<std::pair<uint64_t, uint64_t>, SubcellId> ids;
    for (const uint32_t pid : cell.point_ids) {
      const SubcellId sc = f.geom.SubcellOf(f.data.point(pid), cell.coord);
      ++hist[{sc.hi, sc.lo}];
      ids[{sc.hi, sc.lo}] = sc;
    }
    uint32_t matched = 0;
    for (const auto& kv : hist) {
      float center[CellCoord::kMaxDim];
      f.geom.SubcellCenter(cell.coord, ids[kv.first], center);
      if (DistanceSquared(q, center, f.data.dim()) <= eps2) {
        matched += kv.second;
      }
    }
    if (matched > 0) per_cell[cid] = matched;
  }
  return per_cell;
}

std::map<uint32_t, uint32_t> DictQuery(const CellDictionary& dict,
                                       const float* q) {
  std::map<uint32_t, uint32_t> per_cell;
  dict.Query(q, [&](const DictCell& c, uint32_t matched) {
    per_cell[c.cell_id] += matched;
  });
  return per_cell;
}

TEST(CellDictionaryTest, CountsMatchData) {
  Fixture f(synth::Blobs(3000, 4, 2.0, 1), /*eps=*/1.0, /*rho=*/0.05);
  auto dict = CellDictionary::Build(f.data, *f.cells);
  ASSERT_TRUE(dict.ok());
  EXPECT_EQ(dict->num_cells(), f.cells->num_cells());
  size_t total = 0;
  for (const SubDictionary& sd : dict->subdictionaries()) {
    for (const DictCell& c : sd.cells()) {
      total += c.total_count;
      uint32_t from_subcells = 0;
      for (uint32_t s = c.subcell_begin; s < c.subcell_end; ++s) {
        from_subcells += sd.subcells()[s].count;
      }
      EXPECT_EQ(from_subcells, c.total_count);
      EXPECT_EQ(c.total_count,
                f.cells->cell(c.cell_id).point_ids.size());
    }
  }
  EXPECT_EQ(total, f.data.size());
}

TEST(CellDictionaryTest, QueryMatchesBruteForce) {
  Fixture f(synth::Blobs(2000, 3, 2.0, 2), /*eps=*/1.2, /*rho=*/0.05);
  auto dict = CellDictionary::Build(f.data, *f.cells);
  ASSERT_TRUE(dict.ok());
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const uint32_t pid = static_cast<uint32_t>(rng.Uniform(f.data.size()));
    const float* q = f.data.point(pid);
    EXPECT_EQ(DictQuery(*dict, q), BruteQuery(f, q)) << "trial " << trial;
  }
}

TEST(CellDictionaryTest, QueryMatchesBruteForceOffDataPoints) {
  Fixture f(synth::Blobs(1500, 3, 2.0, 5), /*eps=*/0.9, /*rho=*/0.1);
  auto dict = CellDictionary::Build(f.data, *f.cells);
  ASSERT_TRUE(dict.ok());
  Rng rng(4);
  for (int trial = 0; trial < 25; ++trial) {
    const float q[2] = {static_cast<float>(rng.UniformDouble(0, 100)),
                        static_cast<float>(rng.UniformDouble(0, 100))};
    EXPECT_EQ(DictQuery(*dict, q), BruteQuery(f, q)) << "trial " << trial;
  }
}

TEST(CellDictionaryTest, DefragAndSkippingDoNotChangeResults) {
  Fixture f(synth::Blobs(2000, 4, 2.0, 6), /*eps=*/1.0, /*rho=*/0.05);
  CellDictionaryOptions plain;
  plain.defragment = false;
  plain.enable_skipping = false;
  CellDictionaryOptions tuned;
  tuned.defragment = true;
  tuned.enable_skipping = true;
  tuned.max_cells_per_subdict = 64;
  auto d1 = CellDictionary::Build(f.data, *f.cells, plain);
  auto d2 = CellDictionary::Build(f.data, *f.cells, tuned);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1->num_subdictionaries(), 1u);
  EXPECT_GT(d2->num_subdictionaries(), 1u);
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t pid = static_cast<uint32_t>(rng.Uniform(f.data.size()));
    const float* q = f.data.point(pid);
    EXPECT_EQ(DictQuery(*d1, q), DictQuery(*d2, q));
  }
}

TEST(CellDictionaryTest, SkippingVisitsFewerSubdictionaries) {
  Fixture f(synth::Blobs(4000, 6, 1.5, 7), /*eps=*/0.8, /*rho=*/0.1);
  CellDictionaryOptions opts;
  opts.max_cells_per_subdict = 32;
  auto with = CellDictionary::Build(f.data, *f.cells, opts);
  opts.enable_skipping = false;
  auto without = CellDictionary::Build(f.data, *f.cells, opts);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  const float* q = f.data.point(0);
  auto ignore = [](const DictCell&, uint32_t) {};
  EXPECT_LT(with->Query(q, ignore), without->Query(q, ignore));
}

TEST(CellDictionaryTest, RTreeIndexGivesIdenticalResults) {
  // Lemma 5.6 names "R*-tree or kd-tree"; both indexes must agree.
  Fixture f(synth::Blobs(2500, 4, 2.0, 13), /*eps=*/1.0, /*rho=*/0.05);
  CellDictionaryOptions kd;
  kd.index = CandidateIndex::kKdTree;
  CellDictionaryOptions rt;
  rt.index = CandidateIndex::kRTree;
  auto d1 = CellDictionary::Build(f.data, *f.cells, kd);
  auto d2 = CellDictionary::Build(f.data, *f.cells, rt);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t pid = static_cast<uint32_t>(rng.Uniform(f.data.size()));
    const float* q = f.data.point(pid);
    EXPECT_EQ(DictQuery(*d1, q), DictQuery(*d2, q)) << trial;
  }
}

TEST(CellDictionaryTest, SizeFormulaLemma43) {
  Fixture f(synth::Blobs(1000, 3, 2.0, 8), /*eps=*/1.0, /*rho=*/0.05);
  auto dict = CellDictionary::Build(f.data, *f.cells);
  ASSERT_TRUE(dict.ok());
  const size_t d = 2;
  const size_t h = 6;  // rho=0.05 -> h=6
  const size_t expect_bits =
      32 * (dict->num_cells() + dict->num_subcells()) +
      32 * d * dict->num_cells() + d * (h - 1) * dict->num_subcells();
  EXPECT_EQ(dict->SizeBitsLemma43(), expect_bits);
  EXPECT_EQ(dict->SizeBytesLemma43(), (expect_bits + 7) / 8);
}

TEST(CellDictionaryTest, DictionaryIsSmallerThanDataAtScale) {
  // Table 5's premise: the dictionary compresses the data set. With
  // rho = 0.10 and clustered data, many points share sub-cells.
  Fixture f(synth::Blobs(50000, 5, 1.0, 9), /*eps=*/2.0, /*rho=*/0.10);
  auto dict = CellDictionary::Build(f.data, *f.cells);
  ASSERT_TRUE(dict.ok());
  EXPECT_LT(dict->SizeBytesLemma43(), f.data.PayloadBytes());
}

TEST(CellDictionaryTest, LargerEpsShrinksDictionary) {
  // The paper's observation (Sec. 7.2.1): dictionaries get more compact as
  // eps grows because (sub-)cells grow.
  const Dataset ds = synth::Blobs(20000, 5, 1.0, 10);
  size_t prev = SIZE_MAX;
  for (const double eps : {0.5, 1.0, 2.0, 4.0}) {
    Fixture f(ds, eps, 0.05);
    auto dict = CellDictionary::Build(f.data, *f.cells);
    ASSERT_TRUE(dict.ok());
    const size_t bytes = dict->SizeBytesLemma43();
    EXPECT_LT(bytes, prev) << "eps=" << eps;
    prev = bytes;
  }
}

TEST(CellDictionaryTest, RejectsZeroBudget) {
  Fixture f(synth::Blobs(100, 2, 2.0, 11), 1.0, 0.1);
  CellDictionaryOptions opts;
  opts.max_cells_per_subdict = 0;
  EXPECT_FALSE(CellDictionary::Build(f.data, *f.cells, opts).ok());
}

TEST(CellDictionaryTest, QueryCountIncludesOwnSubcell) {
  // A point always finds at least itself (its own sub-cell's density).
  Fixture f(synth::Blobs(500, 2, 2.0, 12), 1.0, 0.05);
  auto dict = CellDictionary::Build(f.data, *f.cells);
  ASSERT_TRUE(dict.ok());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_GE(dict->QueryCount(f.data.point(i)), 1u);
  }
}

}  // namespace
}  // namespace rpdbscan
