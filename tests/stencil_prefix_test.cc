// Randomized proof obligations of the stencil-family prefix reuse (the
// machinery letting every eps-ladder level run against one assembled
// dictionary): a family member enumerated fresh at a smaller scale must
// be bit-identical to the corresponding prefix of the larger member, and
// PrefixCount must select exactly the offsets passing the shared integer
// class criterion. hierarchy_differential_test checks the same property
// end-to-end through clustering results; this suite checks the offset
// sets themselves.

#include "core/lattice_stencil.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "test_seed.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

constexpr size_t kMaxOffsets = 200000;

/// Largest eps scale whose stencil stays well under kMaxOffsets — the
/// kept-offset count grows like (2 scale sqrt(d) + 3)^d, so high
/// dimensions get a shorter ladder.
double MaxExtraScale(size_t dim) {
  if (dim <= 3) return 1.6;
  return dim == 4 ? 0.8 : 0.5;
}

TEST(StencilPrefixTest, ScaledFamilyMembersAreNestedPrefixes) {
  const uint64_t seed = TestSeed(8700);
  SCOPED_TRACE(SeedNote(seed));
  Rng rng(seed);
  for (int round = 0; round < 12; ++round) {
    const size_t dim = 2 + static_cast<size_t>(rng.Uniform(4));  // 2..5
    const double top_scale =
        1.0 + rng.UniformDouble(0.0, MaxExtraScale(dim));
    SCOPED_TRACE("round " + std::to_string(round) + " dim " +
                 std::to_string(dim) + " top scale " +
                 std::to_string(top_scale));
    const LatticeStencil assembled =
        LatticeStencil::CreateScaled(dim, top_scale, kMaxOffsets);
    ASSERT_TRUE(assembled.enabled());

    // Random ladder of sub-scales, each compared against the prefix.
    for (int level = 0; level < 4; ++level) {
      const double scale = 1.0 + rng.UniformDouble(0.0, top_scale - 1.0);
      const LatticeStencil fresh =
          LatticeStencil::CreateScaled(dim, scale, kMaxOffsets);
      ASSERT_TRUE(fresh.enabled());
      const double budget = LatticeStencil::ScaledBudget(dim, scale);
      const size_t prefix = assembled.PrefixCount(budget);
      ASSERT_EQ(prefix, fresh.num_offsets())
          << "scale " << scale << ": prefix length differs from a fresh "
          << "enumeration at that scale";
      // Bit-identical offsets in identical order, not just the same set.
      if (prefix > 0) {
        EXPECT_EQ(std::memcmp(assembled.offset(0), fresh.offset(0),
                              prefix * dim * sizeof(int32_t)),
                  0)
            << "scale " << scale;
      }
      for (size_t i = 0; i < prefix; ++i) {
        ASSERT_EQ(assembled.min_dist_class(i), fresh.min_dist_class(i));
      }
    }
  }
}

TEST(StencilPrefixTest, PrefixCountMatchesTheSharedCriterion) {
  const uint64_t seed = TestSeed(8800);
  SCOPED_TRACE(SeedNote(seed));
  Rng rng(seed);
  for (int round = 0; round < 12; ++round) {
    const size_t dim = 2 + static_cast<size_t>(rng.Uniform(4));
    const double top_scale =
        1.0 + rng.UniformDouble(0.0, MaxExtraScale(dim));
    const LatticeStencil st =
        LatticeStencil::CreateScaled(dim, top_scale, kMaxOffsets);
    ASSERT_TRUE(st.enabled());
    const double budget =
        LatticeStencil::ScaledBudget(dim, 1.0 + rng.UniformDouble(0.0, 0.9));
    const size_t prefix = st.PrefixCount(budget);
    // Every offset in the prefix passes `(double)m <= budget`, the first
    // one past it fails — the identical comparison the dictionary's CSR
    // class filter and the probe loop apply.
    for (size_t i = 0; i < st.num_offsets(); ++i) {
      const bool kept =
          static_cast<double>(st.min_dist_class(i)) <= budget;
      ASSERT_EQ(kept, i < prefix)
          << "offset " << i << " class " << st.min_dist_class(i)
          << " budget " << budget;
    }
  }
}

TEST(StencilPrefixTest, ScaleOneReproducesTheClassicStencil) {
  for (size_t dim = 1; dim <= 5; ++dim) {
    const LatticeStencil classic = LatticeStencil::Create(dim, kMaxOffsets);
    const LatticeStencil scaled =
        LatticeStencil::CreateScaled(dim, 1.0, kMaxOffsets);
    ASSERT_EQ(classic.num_offsets(), scaled.num_offsets()) << "dim " << dim;
    ASSERT_TRUE(classic.enabled());
    EXPECT_EQ(std::memcmp(classic.offset(0), scaled.offset(0),
                          classic.num_offsets() * dim * sizeof(int32_t)),
              0)
        << "dim " << dim;
    // The classic budget admits every enumerated offset and nothing
    // forces re-enumeration: PrefixCount at the full budget is total.
    EXPECT_EQ(scaled.PrefixCount(scaled.budget()), scaled.num_offsets());
  }
}

}  // namespace
}  // namespace rpdbscan
