#include "parallel/parallel_sort.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/thread_pool.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

// Key plus original position: the position tag turns every equality check
// into a stability check (std::stable_sort on the key alone is the oracle).
struct Item {
  uint64_t key = 0;
  uint32_t pos = 0;
};

uint8_t ByteOf(const Item& item, unsigned b) {
  return static_cast<uint8_t>(item.key >> (8 * b));
}

std::vector<Item> Tagged(const std::vector<uint64_t>& keys) {
  std::vector<Item> items(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    items[i] = Item{keys[i], static_cast<uint32_t>(i)};
  }
  return items;
}

// Runs the radix sort (with `threads` pool workers; 0 = no pool) and
// asserts the result matches a stable sort of the same input — same key
// order AND same original-position order inside equal-key runs.
void ExpectStableSorted(const std::vector<uint64_t>& keys, size_t threads,
                        unsigned num_key_bytes = 8) {
  std::vector<Item> items = Tagged(keys);
  std::vector<Item> expected = items;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Item& a, const Item& b) { return a.key < b.key; });
  std::vector<Item> scratch;
  if (threads == 0) {
    ParallelRadixSort(items, scratch, num_key_bytes, ByteOf, nullptr);
  } else {
    ThreadPool pool(threads);
    ParallelRadixSort(items, scratch, num_key_bytes, ByteOf, &pool);
  }
  ASSERT_EQ(items.size(), expected.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].key, expected[i].key) << "at index " << i;
    EXPECT_EQ(items[i].pos, expected[i].pos)
        << "stability broken at index " << i << " (key " << items[i].key
        << ")";
  }
}

TEST(ParallelSortTest, EmptyInput) {
  ExpectStableSorted({}, 0);
  ExpectStableSorted({}, 4);
}

TEST(ParallelSortTest, SingleElement) {
  ExpectStableSorted({42}, 0);
  ExpectStableSorted({42}, 4);
}

TEST(ParallelSortTest, AllEqualKeysSkipEveryPass) {
  // Every byte is constant, so the degenerate-pass skip fires 8 times and
  // the input must come back untouched (which is also the stable order).
  std::vector<uint64_t> keys(5000, 0xdeadbeefcafe1234ULL);
  ExpectStableSorted(keys, 0);
  ExpectStableSorted(keys, 4);
}

TEST(ParallelSortTest, MoreThreadsThanElements) {
  ExpectStableSorted({3, 1, 2}, 8);
  ExpectStableSorted({2, 2, 1}, 8);
}

TEST(ParallelSortTest, PreSortedInput) {
  std::vector<uint64_t> keys(10000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i * 3;
  ExpectStableSorted(keys, 0);
  ExpectStableSorted(keys, 4);
}

TEST(ParallelSortTest, ReverseSortedInput) {
  std::vector<uint64_t> keys(10000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = (keys.size() - i) * 7;
  ExpectStableSorted(keys, 0);
  ExpectStableSorted(keys, 4);
}

TEST(ParallelSortTest, RandomKeysWithHeavyDuplication) {
  // Few distinct keys over many elements: equal-key runs are long, so any
  // stability bug in the chunked scatter shows up immediately.
  Rng rng(1234);
  std::vector<uint64_t> keys(50000);
  for (uint64_t& k : keys) k = rng.Uniform(17);
  ExpectStableSorted(keys, 0);
  ExpectStableSorted(keys, 4);
}

TEST(ParallelSortTest, FullWidthRandomKeys) {
  Rng rng(99);
  std::vector<uint64_t> keys(20000);
  for (uint64_t& k : keys) k = rng.Next();
  ExpectStableSorted(keys, 0);
  ExpectStableSorted(keys, 4);
}

TEST(ParallelSortTest, SpillScaleStability) {
  // The out-of-core Phase I-1 leans on radix-sort stability at run sizes
  // of tens of thousands of records (core/external_phase1.cc). Exercise a
  // spill-relevant scale with a skewed key distribution: long equal-key
  // runs mixed with full-width outliers.
  Rng rng(4242);
  std::vector<uint64_t> keys(200000);
  for (uint64_t& k : keys) {
    k = rng.Uniform(10) == 0 ? rng.Next() : rng.Uniform(97);
  }
  ExpectStableSorted(keys, 4);
}

// Mirrors the external-sort spill/merge contract at the parallel_sort
// level: sort fixed-size chunks independently (the spill pass), then
// k-way merge with (key, chunk index) ordering (the merge sweep), and
// check the result is *identical* — keys and position tags — to one
// monolithic radix sort. Chunks carry ascending position ranges, so
// stability inside each chunk plus the chunk-index tie-break must
// reproduce the global stable order even when equal keys straddle chunk
// boundaries.
TEST(ParallelSortTest, ChunkedSortPlusMergeMatchesMonolithicSort) {
  Rng rng(777);
  const size_t n = 30000;
  const size_t chunk = 4096;  // last chunk is partial on purpose
  std::vector<uint64_t> keys(n);
  // Few distinct keys: every chunk boundary cuts through an equal-key run.
  for (uint64_t& k : keys) k = rng.Uniform(13);
  std::vector<Item> monolithic = Tagged(keys);
  std::vector<Item> scratch;
  ThreadPool pool(4);
  ParallelRadixSort(monolithic, scratch, 8, ByteOf, &pool);

  // Spill pass: independent stable sorts over chunks.
  std::vector<std::vector<Item>> runs;
  for (size_t first = 0; first < n; first += chunk) {
    const size_t count = std::min(chunk, n - first);
    std::vector<Item> run(count);
    for (size_t i = 0; i < count; ++i) {
      run[i] = Item{keys[first + i], static_cast<uint32_t>(first + i)};
    }
    ParallelRadixSort(run, scratch, 8, ByteOf, &pool);
    runs.push_back(std::move(run));
  }
  // Merge sweep: smallest (key, run index) first.
  std::vector<Item> merged;
  merged.reserve(n);
  std::vector<size_t> cursor(runs.size(), 0);
  while (merged.size() < n) {
    size_t best = runs.size();
    for (size_t r = 0; r < runs.size(); ++r) {
      if (cursor[r] == runs[r].size()) continue;
      if (best == runs.size() ||
          runs[r][cursor[r]].key < runs[best][cursor[best]].key) {
        best = r;
      }
    }
    merged.push_back(runs[best][cursor[best]++]);
  }
  ASSERT_EQ(merged.size(), monolithic.size());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(merged[i].key, monolithic[i].key) << "at index " << i;
    ASSERT_EQ(merged[i].pos, monolithic[i].pos)
        << "chunk-boundary stability broken at index " << i;
  }
}

TEST(ParallelSortTest, TruncatedKeyBytesSortOnlyLowBytes) {
  // num_key_bytes = 2 must order by the low 16 bits only — and remain
  // stable w.r.t. the high bits it never looks at.
  Rng rng(7);
  std::vector<uint64_t> raw(10000);
  for (uint64_t& k : raw) k = rng.Next();
  std::vector<Item> items = Tagged(raw);
  std::vector<Item> expected = items;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Item& a, const Item& b) {
                     return (a.key & 0xffff) < (b.key & 0xffff);
                   });
  std::vector<Item> scratch;
  ThreadPool pool(4);
  ParallelRadixSort(items, scratch, 2, ByteOf, &pool);
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_EQ(items[i].pos, expected[i].pos) << "at index " << i;
  }
}

}  // namespace
}  // namespace rpdbscan
