#include "parallel/parallel_sort.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/thread_pool.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

// Key plus original position: the position tag turns every equality check
// into a stability check (std::stable_sort on the key alone is the oracle).
struct Item {
  uint64_t key = 0;
  uint32_t pos = 0;
};

uint8_t ByteOf(const Item& item, unsigned b) {
  return static_cast<uint8_t>(item.key >> (8 * b));
}

std::vector<Item> Tagged(const std::vector<uint64_t>& keys) {
  std::vector<Item> items(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    items[i] = Item{keys[i], static_cast<uint32_t>(i)};
  }
  return items;
}

// Runs the radix sort (with `threads` pool workers; 0 = no pool) and
// asserts the result matches a stable sort of the same input — same key
// order AND same original-position order inside equal-key runs.
void ExpectStableSorted(const std::vector<uint64_t>& keys, size_t threads,
                        unsigned num_key_bytes = 8) {
  std::vector<Item> items = Tagged(keys);
  std::vector<Item> expected = items;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Item& a, const Item& b) { return a.key < b.key; });
  std::vector<Item> scratch;
  if (threads == 0) {
    ParallelRadixSort(items, scratch, num_key_bytes, ByteOf, nullptr);
  } else {
    ThreadPool pool(threads);
    ParallelRadixSort(items, scratch, num_key_bytes, ByteOf, &pool);
  }
  ASSERT_EQ(items.size(), expected.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].key, expected[i].key) << "at index " << i;
    EXPECT_EQ(items[i].pos, expected[i].pos)
        << "stability broken at index " << i << " (key " << items[i].key
        << ")";
  }
}

TEST(ParallelSortTest, EmptyInput) {
  ExpectStableSorted({}, 0);
  ExpectStableSorted({}, 4);
}

TEST(ParallelSortTest, SingleElement) {
  ExpectStableSorted({42}, 0);
  ExpectStableSorted({42}, 4);
}

TEST(ParallelSortTest, AllEqualKeysSkipEveryPass) {
  // Every byte is constant, so the degenerate-pass skip fires 8 times and
  // the input must come back untouched (which is also the stable order).
  std::vector<uint64_t> keys(5000, 0xdeadbeefcafe1234ULL);
  ExpectStableSorted(keys, 0);
  ExpectStableSorted(keys, 4);
}

TEST(ParallelSortTest, MoreThreadsThanElements) {
  ExpectStableSorted({3, 1, 2}, 8);
  ExpectStableSorted({2, 2, 1}, 8);
}

TEST(ParallelSortTest, PreSortedInput) {
  std::vector<uint64_t> keys(10000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i * 3;
  ExpectStableSorted(keys, 0);
  ExpectStableSorted(keys, 4);
}

TEST(ParallelSortTest, ReverseSortedInput) {
  std::vector<uint64_t> keys(10000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = (keys.size() - i) * 7;
  ExpectStableSorted(keys, 0);
  ExpectStableSorted(keys, 4);
}

TEST(ParallelSortTest, RandomKeysWithHeavyDuplication) {
  // Few distinct keys over many elements: equal-key runs are long, so any
  // stability bug in the chunked scatter shows up immediately.
  Rng rng(1234);
  std::vector<uint64_t> keys(50000);
  for (uint64_t& k : keys) k = rng.Uniform(17);
  ExpectStableSorted(keys, 0);
  ExpectStableSorted(keys, 4);
}

TEST(ParallelSortTest, FullWidthRandomKeys) {
  Rng rng(99);
  std::vector<uint64_t> keys(20000);
  for (uint64_t& k : keys) k = rng.Next();
  ExpectStableSorted(keys, 0);
  ExpectStableSorted(keys, 4);
}

TEST(ParallelSortTest, TruncatedKeyBytesSortOnlyLowBytes) {
  // num_key_bytes = 2 must order by the low 16 bits only — and remain
  // stable w.r.t. the high bits it never looks at.
  Rng rng(7);
  std::vector<uint64_t> raw(10000);
  for (uint64_t& k : raw) k = rng.Next();
  std::vector<Item> items = Tagged(raw);
  std::vector<Item> expected = items;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Item& a, const Item& b) {
                     return (a.key & 0xffff) < (b.key & 0xffff);
                   });
  std::vector<Item> scratch;
  ThreadPool pool(4);
  ParallelRadixSort(items, scratch, 2, ByteOf, &pool);
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_EQ(items[i].pos, expected[i].pos) << "at index " << i;
  }
}

}  // namespace
}  // namespace rpdbscan
