// Concurrency contract of the serving layer (run under TSan by
// tools/run_checks.sh): one immutable snapshot shared by any number of
// threads, batched classification deterministic and identical to the
// serial path regardless of thread count.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/rp_dbscan.h"
#include "parallel/thread_pool.h"
#include "serve/label_server.h"
#include "serve/snapshot.h"
#include "synth/generators.h"
#include "test_seed.h"

namespace rpdbscan {
namespace {

struct Frozen {
  Dataset data{2};
  Labels labels;
  std::shared_ptr<const ClusterModelSnapshot> snapshot;
};

Frozen Freeze(uint64_t seed) {
  Frozen f;
  f.data = synth::Blobs(4000, 5, 1.5, seed, 3);
  RpDbscanOptions o;
  o.eps = 2.0;
  o.min_pts = 20;
  o.num_threads = 2;
  o.num_partitions = 4;
  o.capture_model = true;
  auto run = RunRpDbscan(f.data, o);
  EXPECT_TRUE(run.ok()) << run.status();
  f.labels = run->labels;
  auto snap = ClusterModelSnapshot::FromModel(std::move(*run->model));
  EXPECT_TRUE(snap.ok()) << snap.status();
  f.snapshot =
      std::make_shared<const ClusterModelSnapshot>(std::move(*snap));
  return f;
}

bool SameResult(const ServeResult& a, const ServeResult& b) {
  return a.cluster == b.cluster && a.kind == b.kind &&
         a.certainty == b.certainty && a.density == b.density;
}

TEST(ServeConcurrentTest, BatchMatchesSerialAcrossThreadCounts) {
  const uint64_t seed = TestSeed(6600);
  SCOPED_TRACE(SeedNote(seed));
  const Frozen f = Freeze(seed);
  const LabelServer server(f.snapshot);

  std::vector<ServeResult> serial(f.data.size());
  ServeStats serial_stats;
  for (size_t i = 0; i < f.data.size(); ++i) {
    serial[i] = server.Classify(f.data.point(i), &serial_stats);
    ASSERT_EQ(serial[i].cluster, f.labels[i]) << "point " << i;
  }

  uint64_t grouped_probes = 0;
  uint64_t grouped_hits = 0;
  bool have_grouped = false;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    std::vector<ServeResult> batch;
    ServeStats stats;
    const Status s = server.ClassifyBatch(f.data, pool, &batch, &stats);
    ASSERT_TRUE(s.ok()) << s;
    ASSERT_EQ(batch.size(), serial.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(SameResult(batch[i], serial[i])) << "point " << i;
    }
    // Merged semantic counters are sums of per-point integers:
    // thread-count independent and equal to the serial path's.
    EXPECT_EQ(stats.queries, serial_stats.queries);
    EXPECT_EQ(stats.cell_hits, serial_stats.cell_hits);
    EXPECT_EQ(stats.exact, serial_stats.exact);
    EXPECT_EQ(stats.core, serial_stats.core);
    EXPECT_EQ(stats.border, serial_stats.border);
    EXPECT_EQ(stats.noise, serial_stats.noise);
    EXPECT_EQ(stats.border_ref_scans, serial_stats.border_ref_scans);
    // The probe counters follow the grouped accounting (one neighborhood
    // walk per group, probes == hits over present cells), so they are
    // smaller than the per-query path's — but grouping is by home-cell
    // slot, never by thread, so they must not depend on the thread count.
    EXPECT_EQ(stats.stencil_probes, stats.stencil_hits);
    EXPECT_LE(stats.stencil_probes, serial_stats.stencil_probes);
    if (!have_grouped) {
      grouped_probes = stats.stencil_probes;
      grouped_hits = stats.stencil_hits;
      have_grouped = true;
    } else {
      EXPECT_EQ(stats.stencil_probes, grouped_probes);
      EXPECT_EQ(stats.stencil_hits, grouped_hits);
    }
  }
}

TEST(ServeConcurrentTest, ManyClientsShareOneServerWaitFree) {
  // Several client threads, each running its own batches against the same
  // LabelServer (and one more hammering single-point Classify): the whole
  // read path must be free of data races — this is the test TSan watches.
  const uint64_t seed = TestSeed(6700);
  SCOPED_TRACE(SeedNote(seed));
  const Frozen f = Freeze(seed);
  const LabelServer server(f.snapshot);

  std::vector<ServeResult> expected(f.data.size());
  for (size_t i = 0; i < f.data.size(); ++i) {
    expected[i] = server.Classify(f.data.point(i));
  }

  constexpr size_t kClients = 3;
  std::vector<std::vector<ServeResult>> got(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients + 1);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ThreadPool pool(2);
      const Status s = server.ClassifyBatch(f.data, pool, &got[c]);
      EXPECT_TRUE(s.ok()) << s;
    });
  }
  clients.emplace_back([&] {
    for (size_t i = 0; i < f.data.size(); i += 17) {
      const ServeResult r = server.Classify(f.data.point(i));
      EXPECT_TRUE(SameResult(r, expected[i])) << "point " << i;
    }
  });
  for (std::thread& t : clients) t.join();

  for (size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[c].size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_TRUE(SameResult(got[c][i], expected[i]))
          << "client " << c << " point " << i;
    }
  }
}

}  // namespace
}  // namespace rpdbscan
