#include "metrics/nmi.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rpdbscan {
namespace {

TEST(NmiTest, IdenticalPartitionsScoreOne) {
  const Labels a = {0, 0, 1, 1, 2, 2};
  auto nmi = NormalizedMutualInformation(a, a);
  ASSERT_TRUE(nmi.ok());
  EXPECT_NEAR(*nmi, 1.0, 1e-12);
}

TEST(NmiTest, RelabelingInvariant) {
  const Labels a = {0, 0, 1, 1, 2, 2};
  const Labels b = {9, 9, 4, 4, 7, 7};
  auto nmi = NormalizedMutualInformation(a, b);
  ASSERT_TRUE(nmi.ok());
  EXPECT_NEAR(*nmi, 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsScoreNearZero) {
  Labels a;
  Labels b;
  for (int i = 0; i < 1024; ++i) {
    a.push_back(i % 2);
    b.push_back((i / 2) % 2);
  }
  auto nmi = NormalizedMutualInformation(a, b);
  ASSERT_TRUE(nmi.ok());
  EXPECT_NEAR(*nmi, 0.0, 1e-9);
}

TEST(NmiTest, KnownHandValue) {
  // a = {0,0,1,1}, b = {0,1,1,1}:
  // H(a) = log 2; H(b) = -(1/4 log 1/4 + 3/4 log 3/4)
  // joint: (0,0)=1/4, (0,1)=1/4, (1,1)=1/2
  // MI = 1/4 log( (1/4)/(1/2*1/4) ) + 1/4 log( (1/4)/(1/2*3/4) )
  //      + 1/2 log( (1/2)/(1/2*3/4) )
  const Labels a = {0, 0, 1, 1};
  const Labels b = {0, 1, 1, 1};
  const double ha = std::log(2.0);
  const double hb =
      -(0.25 * std::log(0.25) + 0.75 * std::log(0.75));
  const double mi = 0.25 * std::log(0.25 / (0.5 * 0.25)) +
                    0.25 * std::log(0.25 / (0.5 * 0.75)) +
                    0.5 * std::log(0.5 / (0.5 * 0.75));
  auto nmi = NormalizedMutualInformation(a, b);
  ASSERT_TRUE(nmi.ok());
  EXPECT_NEAR(*nmi, mi / std::sqrt(ha * hb), 1e-12);
}

TEST(NmiTest, SymmetricInArguments) {
  const Labels a = {0, 0, 0, 1, 1, 2};
  const Labels b = {0, 1, 1, 1, 2, 2};
  auto ab = NormalizedMutualInformation(a, b);
  auto ba = NormalizedMutualInformation(b, a);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_NEAR(*ab, *ba, 1e-12);
}

TEST(NmiTest, NoiseHandlingModes) {
  const Labels a = {0, 0, kNoise, kNoise};
  const Labels b = {0, 0, kNoise, kNoise};
  auto singleton =
      NormalizedMutualInformation(a, b, NoiseHandling::kSingleton);
  ASSERT_TRUE(singleton.ok());
  EXPECT_NEAR(*singleton, 1.0, 1e-12);
  auto one = NormalizedMutualInformation(a, b, NoiseHandling::kOneCluster);
  ASSERT_TRUE(one.ok());
  EXPECT_NEAR(*one, 1.0, 1e-12);
}

TEST(NmiTest, TrivialPartitionsBothSingleCluster) {
  const Labels a = {0, 0, 0};
  auto nmi = NormalizedMutualInformation(a, a, NoiseHandling::kOneCluster);
  ASSERT_TRUE(nmi.ok());
  EXPECT_DOUBLE_EQ(*nmi, 1.0);
}

TEST(NmiTest, RejectsSizeMismatch) {
  const Labels a = {0, 1};
  const Labels b = {0};
  EXPECT_FALSE(NormalizedMutualInformation(a, b).ok());
}

TEST(NmiTest, EmptyIsPerfect) {
  // Two empty labelings are vacuously identical partitions
  // (metrics_edge_case_test pins the full convention set).
  auto nmi = NormalizedMutualInformation({}, {});
  ASSERT_TRUE(nmi.ok());
  EXPECT_DOUBLE_EQ(*nmi, 1.0);
}

TEST(NmiTest, BoundedInUnitInterval) {
  const Labels a = {0, 1, 2, 0, 1, 2, 0, 1};
  const Labels b = {2, 2, 1, 1, 0, 0, 2, 1};
  auto nmi = NormalizedMutualInformation(a, b);
  ASSERT_TRUE(nmi.ok());
  EXPECT_GE(*nmi, 0.0);
  EXPECT_LE(*nmi, 1.0);
}

}  // namespace
}  // namespace rpdbscan
