#include "util/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace rpdbscan {
namespace {

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch w;
  const double t1 = w.ElapsedSeconds();
  const double t2 = w.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(StopwatchTest, MeasuresSleep) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(w.ElapsedSeconds(), 0.015);
  EXPECT_GE(w.ElapsedNanos(), 15000000);
}

TEST(StopwatchTest, ResetRestartsFromZero) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w.Reset();
  EXPECT_LT(w.ElapsedSeconds(), 0.015);
}

}  // namespace
}  // namespace rpdbscan
