#include "core/cell_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "synth/generators.h"
#include "util/random.h"

namespace rpdbscan {
namespace {

GridGeometry MakeGeom(size_t dim, double eps, double rho = 0.1) {
  auto g = GridGeometry::Create(dim, eps, rho);
  EXPECT_TRUE(g.ok());
  return *g;
}

TEST(CellSetTest, EveryPointAssignedToExactlyOneCell) {
  const Dataset ds = synth::Blobs(5000, 5, 2.0, 1);
  auto set = CellSet::Build(ds, MakeGeom(2, 1.0), 8, 7);
  ASSERT_TRUE(set.ok());
  size_t total = 0;
  std::set<uint32_t> seen;
  for (uint32_t c = 0; c < set->num_cells(); ++c) {
    for (const uint32_t pid : set->cell(c).point_ids) {
      EXPECT_TRUE(seen.insert(pid).second) << "point in two cells";
    }
    total += set->cell(c).point_ids.size();
  }
  EXPECT_EQ(total, ds.size());
}

TEST(CellSetTest, PointsLandInTheirGeometricCell) {
  const Dataset ds = synth::Blobs(1000, 3, 2.0, 2);
  const GridGeometry geom = MakeGeom(2, 0.8);
  auto set = CellSet::Build(ds, geom, 4, 7);
  ASSERT_TRUE(set.ok());
  for (uint32_t c = 0; c < set->num_cells(); ++c) {
    for (const uint32_t pid : set->cell(c).point_ids) {
      EXPECT_EQ(geom.CellOf(ds.point(pid)), set->cell(c).coord);
    }
  }
}

TEST(CellSetTest, PartitionsCoverAllCellsDisjointly) {
  const Dataset ds = synth::Blobs(5000, 5, 2.0, 3);
  auto set = CellSet::Build(ds, MakeGeom(2, 1.0), 6, 7);
  ASSERT_TRUE(set.ok());
  std::set<uint32_t> seen;
  for (uint32_t p = 0; p < set->num_partitions(); ++p) {
    for (const uint32_t cid : set->partition(p)) {
      EXPECT_TRUE(seen.insert(cid).second);
      EXPECT_EQ(set->cell(cid).owner_partition, p);
    }
  }
  EXPECT_EQ(seen.size(), set->num_cells());
}

TEST(CellSetTest, PartitioningIsDeterministicPerSeed) {
  const Dataset ds = synth::Blobs(2000, 4, 2.0, 4);
  auto a = CellSet::Build(ds, MakeGeom(2, 1.0), 8, 42);
  auto b = CellSet::Build(ds, MakeGeom(2, 1.0), 8, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_cells(), b->num_cells());
  for (uint32_t c = 0; c < a->num_cells(); ++c) {
    EXPECT_EQ(a->cell(c).owner_partition, b->cell(c).owner_partition);
  }
}

TEST(CellSetTest, DifferentSeedsShuffleAssignment) {
  const Dataset ds = synth::Blobs(2000, 4, 2.0, 4);
  auto a = CellSet::Build(ds, MakeGeom(2, 1.0), 8, 1);
  auto b = CellSet::Build(ds, MakeGeom(2, 1.0), 8, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  size_t differ = 0;
  for (uint32_t c = 0; c < a->num_cells(); ++c) {
    if (a->cell(c).owner_partition != b->cell(c).owner_partition) ++differ;
  }
  EXPECT_GT(differ, 0u);
}

TEST(CellSetTest, PartitionSizesDifferByAtMostOneCell) {
  // Sec. 4.1: partitions of the same size (exactly, up to rounding).
  const Dataset ds = synth::Blobs(8000, 6, 2.0, 14);
  auto set = CellSet::Build(ds, MakeGeom(2, 0.7), 7, 9);
  ASSERT_TRUE(set.ok());
  size_t lo = SIZE_MAX;
  size_t hi = 0;
  for (uint32_t p = 0; p < set->num_partitions(); ++p) {
    lo = std::min(lo, set->partition(p).size());
    hi = std::max(hi, set->partition(p).size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(CellSetTest, PartitionSizesBalancedForArbitrarySeeds) {
  // Property form of the Sec. 4.1 guarantee: for ANY split seed and any
  // partition count, cell counts differ by at most one across partitions.
  const Dataset ds = synth::Blobs(4000, 5, 2.0, 21);
  const GridGeometry geom = MakeGeom(2, 0.9);
  Rng rng(77);
  for (int round = 0; round < 25; ++round) {
    const uint64_t seed = rng.Next();
    const size_t k = 1 + rng.Uniform(15);
    auto set = CellSet::Build(ds, geom, k, seed);
    ASSERT_TRUE(set.ok());
    size_t lo = SIZE_MAX;
    size_t hi = 0;
    for (uint32_t p = 0; p < set->num_partitions(); ++p) {
      lo = std::min(lo, set->partition(p).size());
      hi = std::max(hi, set->partition(p).size());
    }
    EXPECT_LE(hi - lo, 1u) << "seed=" << seed << " k=" << k;
  }
}

TEST(CellSetTest, CsrLayoutIsConsistent) {
  const Dataset ds = synth::GeoLifeLike(5000, 13);
  auto set = CellSet::Build(ds, MakeGeom(3, 1.0), 8, 7);
  ASSERT_TRUE(set.ok());
  const auto& offsets = set->cell_point_offsets();
  const auto& flat = set->point_ids();
  ASSERT_EQ(offsets.size(), set->num_cells() + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), ds.size());
  EXPECT_EQ(flat.size(), ds.size());
  for (uint32_t c = 0; c < set->num_cells(); ++c) {
    ASSERT_LE(offsets[c], offsets[c + 1]);
    const PointIdSpan span = set->cell(c).point_ids;
    // Each span is exactly its CSR slice, with ascending point ids.
    ASSERT_EQ(span.data(), flat.data() + offsets[c]);
    ASSERT_EQ(span.size(), offsets[c + 1] - offsets[c]);
    for (size_t i = 1; i < span.size(); ++i) {
      EXPECT_LT(span[i - 1], span[i]);
    }
  }
}

TEST(CellSetTest, CachedPartitionPointsMatchSpans) {
  const Dataset ds = synth::GeoLifeLike(8000, 5);
  auto set = CellSet::Build(ds, MakeGeom(3, 1.0), 9, 3);
  ASSERT_TRUE(set.ok());
  size_t max_pts = 0;
  size_t min_pts = SIZE_MAX;
  size_t total = 0;
  for (uint32_t p = 0; p < set->num_partitions(); ++p) {
    size_t n = 0;
    for (const uint32_t cid : set->partition(p)) {
      n += set->cell(cid).point_ids.size();
    }
    EXPECT_EQ(set->PartitionPoints(p), n);
    max_pts = std::max(max_pts, n);
    min_pts = std::min(min_pts, n);
    total += n;
  }
  EXPECT_EQ(set->MaxPartitionPoints(), max_pts);
  EXPECT_EQ(set->MinPartitionPoints(), min_pts);
  EXPECT_EQ(total, ds.size());
}

TEST(CellSetTest, LoadBalanceOnSkewedData) {
  // The headline property of pseudo random partitioning (Sec. 4.1): even
  // on heavily skewed data, partitions get nearly equal point counts.
  const Dataset ds = synth::GeoLifeLike(60000, 11);
  auto set = CellSet::Build(ds, MakeGeom(3, 1.0), 10, 3);
  ASSERT_TRUE(set.ok());
  const double ratio =
      static_cast<double>(set->MaxPartitionPoints()) /
      static_cast<double>(std::max<size_t>(1, set->MinPartitionPoints()));
  EXPECT_LT(ratio, 2.0) << "cells per partition should balance points";
}

TEST(CellSetTest, FindCell) {
  const Dataset ds = synth::Blobs(100, 2, 2.0, 5);
  const GridGeometry geom = MakeGeom(2, 1.0);
  auto set = CellSet::Build(ds, geom, 2, 7);
  ASSERT_TRUE(set.ok());
  const CellCoord c0 = geom.CellOf(ds.point(0));
  const int64_t found = set->FindCell(c0);
  ASSERT_GE(found, 0);
  EXPECT_EQ(set->cell(static_cast<uint32_t>(found)).coord, c0);
  const int32_t far[2] = {1000000, 1000000};
  EXPECT_EQ(set->FindCell(CellCoord(far, 2)), -1);
}

TEST(CellSetTest, RejectsInvalidInputs) {
  const Dataset empty(2);
  EXPECT_FALSE(CellSet::Build(empty, MakeGeom(2, 1.0), 4, 7).ok());

  const Dataset ds = synth::Blobs(10, 1, 2.0, 6);
  EXPECT_FALSE(CellSet::Build(ds, MakeGeom(3, 1.0), 4, 7).ok());  // dim
  EXPECT_FALSE(CellSet::Build(ds, MakeGeom(2, 1.0), 0, 7).ok());  // k=0
}

TEST(CellSetTest, MorePartitionsThanCellsLeavesSomeEmpty) {
  Dataset ds(2);
  ds.Append({0, 0});
  ds.Append({0.1f, 0.1f});
  auto set = CellSet::Build(ds, MakeGeom(2, 10.0), 16, 7);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->num_partitions(), 16u);
  EXPECT_LE(set->num_cells(), 2u);
  EXPECT_EQ(set->MinPartitionPoints(), 0u);
}

}  // namespace
}  // namespace rpdbscan
