#include "core/merge.h"

#include <gtest/gtest.h>

#include <vector>

namespace rpdbscan {
namespace {

// Hand-built subgraph helpers.
CellSubgraph MakeGraph(uint32_t pid,
                       std::vector<std::pair<uint32_t, CellType>> owned,
                       std::vector<std::pair<uint32_t, uint32_t>> edges) {
  CellSubgraph g;
  g.partition_id = pid;
  g.owned = std::move(owned);
  for (const auto& [from, to] : edges) {
    g.edges.push_back(CellEdge{from, to, EdgeType::kUndetermined});
  }
  return g;
}

TEST(MergeTest, TwoPartitionsJoinAcrossBoundary) {
  // Cells 0,1 core in partition 0; cells 2,3 core in partition 1.
  // Edges: 0->1 (internal), 1->2 (cross), 2->3 (internal).
  std::vector<CellSubgraph> graphs;
  graphs.push_back(MakeGraph(
      0, {{0, CellType::kCore}, {1, CellType::kCore}}, {{0, 1}, {1, 2}}));
  graphs.push_back(MakeGraph(
      1, {{2, CellType::kCore}, {3, CellType::kCore}}, {{2, 3}}));
  const MergeResult r = MergeSubgraphs(std::move(graphs), 4, MergeOptions());
  EXPECT_EQ(r.num_clusters, 1u);
  for (uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(r.core_cluster[c], r.core_cluster[0]);
    EXPECT_NE(r.core_cluster[c], kNoCluster);
  }
}

TEST(MergeTest, DisconnectedCoresFormSeparateClusters) {
  std::vector<CellSubgraph> graphs;
  graphs.push_back(MakeGraph(0, {{0, CellType::kCore}}, {}));
  graphs.push_back(MakeGraph(1, {{1, CellType::kCore}}, {}));
  const MergeResult r = MergeSubgraphs(std::move(graphs), 2, MergeOptions());
  EXPECT_EQ(r.num_clusters, 2u);
  EXPECT_NE(r.core_cluster[0], r.core_cluster[1]);
}

TEST(MergeTest, PartialEdgesBecomePredecessors) {
  // Cell 0 core, cell 1 non-core in another partition.
  std::vector<CellSubgraph> graphs;
  graphs.push_back(MakeGraph(0, {{0, CellType::kCore}}, {{0, 1}}));
  graphs.push_back(MakeGraph(1, {{1, CellType::kNonCore}}, {}));
  const MergeResult r = MergeSubgraphs(std::move(graphs), 2, MergeOptions());
  EXPECT_EQ(r.num_clusters, 1u);
  EXPECT_EQ(r.core_cluster[1], kNoCluster);
  ASSERT_EQ(r.predecessors[1].size(), 1u);
  EXPECT_EQ(r.predecessors[1][0], 0u);
  EXPECT_TRUE(r.predecessors[0].empty());
}

TEST(MergeTest, NonCoreCellsNeverGetClusters) {
  std::vector<CellSubgraph> graphs;
  graphs.push_back(
      MakeGraph(0, {{0, CellType::kNonCore}, {1, CellType::kNonCore}}, {}));
  const MergeResult r = MergeSubgraphs(std::move(graphs), 2, MergeOptions());
  EXPECT_EQ(r.num_clusters, 0u);
  EXPECT_EQ(r.core_cluster[0], kNoCluster);
  EXPECT_EQ(r.core_cluster[1], kNoCluster);
}

TEST(MergeTest, RedundantFullEdgesAreReduced) {
  // A 4-cycle of core cells inside one partition plus both diagonals:
  // spanning tree keeps 3 of the 6 edges.
  std::vector<CellSubgraph> graphs;
  graphs.push_back(MakeGraph(0,
                             {{0, CellType::kCore},
                              {1, CellType::kCore},
                              {2, CellType::kCore},
                              {3, CellType::kCore}},
                             {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2},
                              {1, 3}}));
  const MergeResult r = MergeSubgraphs(std::move(graphs), 4, MergeOptions());
  EXPECT_EQ(r.num_clusters, 1u);
  ASSERT_GE(r.edges_per_round.size(), 2u);
  EXPECT_EQ(r.edges_per_round.front(), 6u);
  EXPECT_EQ(r.edges_per_round.back(), 3u);
}

TEST(MergeTest, ReductionOffKeepsAllFullEdges) {
  std::vector<CellSubgraph> graphs;
  graphs.push_back(MakeGraph(0,
                             {{0, CellType::kCore},
                              {1, CellType::kCore},
                              {2, CellType::kCore}},
                             {{0, 1}, {1, 2}, {2, 0}}));
  MergeOptions opts;
  opts.reduce_edges = false;
  const MergeResult r = MergeSubgraphs(std::move(graphs), 3, opts);
  EXPECT_EQ(r.num_clusters, 1u);
  EXPECT_EQ(r.edges_per_round.back(), 3u);  // cycle kept
}

TEST(MergeTest, EdgeCountsAreMonotoneNonIncreasing) {
  // 8 partitions in a chain; every partition links to the next one's cell.
  std::vector<CellSubgraph> graphs;
  for (uint32_t p = 0; p < 8; ++p) {
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    if (p + 1 < 8) edges.push_back({p, p + 1});
    if (p > 0) edges.push_back({p, p - 1});
    graphs.push_back(MakeGraph(p, {{p, CellType::kCore}}, edges));
  }
  const MergeResult r = MergeSubgraphs(std::move(graphs), 8, MergeOptions());
  EXPECT_EQ(r.num_clusters, 1u);
  // Tournament over 8 graphs = 3 rounds; round 0 recorded first.
  EXPECT_EQ(r.edges_per_round.size(), 4u);
  for (size_t i = 1; i < r.edges_per_round.size(); ++i) {
    EXPECT_LE(r.edges_per_round[i], r.edges_per_round[i - 1]);
  }
  // Chain of 8 with bidirectional edges (14 total) reduces to 7 spanning.
  EXPECT_EQ(r.edges_per_round.front(), 14u);
  EXPECT_EQ(r.edges_per_round.back(), 7u);
}

TEST(MergeTest, UndeterminedEdgesResolveOnlyWhenOwnerArrives) {
  // Partition 0 has an edge to cell 3 owned by partition 3; with 4
  // partitions the tournament resolves it in round 2, not round 1.
  std::vector<CellSubgraph> graphs;
  graphs.push_back(MakeGraph(0, {{0, CellType::kCore}}, {{0, 3}}));
  graphs.push_back(MakeGraph(1, {{1, CellType::kCore}}, {}));
  graphs.push_back(MakeGraph(2, {{2, CellType::kCore}}, {}));
  graphs.push_back(MakeGraph(3, {{3, CellType::kCore}}, {}));
  const MergeResult r = MergeSubgraphs(std::move(graphs), 4, MergeOptions());
  EXPECT_EQ(r.num_clusters, 3u);  // {0,3}, {1}, {2}
  ASSERT_EQ(r.edges_per_round.size(), 3u);
  EXPECT_EQ(r.edges_per_round[0], 1u);
  EXPECT_EQ(r.edges_per_round[1], 1u);  // still undetermined after round 1
  EXPECT_EQ(r.edges_per_round[2], 1u);  // resolved full, kept as spanning
  EXPECT_EQ(r.core_cluster[0], r.core_cluster[3]);
}

TEST(MergeTest, SinglePartitionResolvesEverything) {
  std::vector<CellSubgraph> graphs;
  graphs.push_back(MakeGraph(0,
                             {{0, CellType::kCore},
                              {1, CellType::kCore},
                              {2, CellType::kNonCore}},
                             {{0, 1}, {0, 2}, {1, 0}}));
  const MergeResult r = MergeSubgraphs(std::move(graphs), 3, MergeOptions());
  EXPECT_EQ(r.num_clusters, 1u);
  EXPECT_EQ(r.core_cluster[0], r.core_cluster[1]);
  EXPECT_EQ(r.core_cluster[2], kNoCluster);
  ASSERT_EQ(r.predecessors[2].size(), 1u);
  EXPECT_EQ(r.predecessors[2][0], 0u);
}

TEST(MergeTest, ParallelMergeMatchesSequential) {
  // 16 partitions in a ring with cross edges; pool-parallel rounds must
  // produce the identical global graph.
  auto make_graphs = [] {
    std::vector<CellSubgraph> graphs;
    for (uint32_t p = 0; p < 16; ++p) {
      std::vector<std::pair<uint32_t, uint32_t>> edges;
      edges.push_back({p, (p + 1) % 16});
      edges.push_back({p, (p + 5) % 16});
      graphs.push_back(MakeGraph(p, {{p, CellType::kCore}}, edges));
    }
    return graphs;
  };
  const MergeResult seq = MergeSubgraphs(make_graphs(), 16, MergeOptions());
  ThreadPool pool(4);
  MergeOptions par;
  par.pool = &pool;
  const MergeResult con = MergeSubgraphs(make_graphs(), 16, par);
  EXPECT_EQ(seq.num_clusters, con.num_clusters);
  EXPECT_EQ(seq.core_cluster, con.core_cluster);
  EXPECT_EQ(seq.edges_per_round, con.edges_per_round);
}

TEST(MergeTest, EmptyInput) {
  const MergeResult r = MergeSubgraphs({}, 0, MergeOptions());
  EXPECT_EQ(r.num_clusters, 0u);
  EXPECT_TRUE(r.core_cluster.empty());
}

TEST(MergeTest, ClusterIdsAreDense) {
  std::vector<CellSubgraph> graphs;
  graphs.push_back(MakeGraph(0,
                             {{0, CellType::kCore},
                              {1, CellType::kCore},
                              {2, CellType::kCore}},
                             {}));
  const MergeResult r = MergeSubgraphs(std::move(graphs), 3, MergeOptions());
  EXPECT_EQ(r.num_clusters, 3u);
  std::vector<bool> seen(3, false);
  for (uint32_t c = 0; c < 3; ++c) {
    ASSERT_LT(r.core_cluster[c], 3u);
    seen[r.core_cluster[c]] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

}  // namespace
}  // namespace rpdbscan
