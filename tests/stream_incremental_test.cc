// Differential harness for the streaming re-clusterer (DESIGN.md §9):
// after every ingested batch, the incremental epoch must be BIT-IDENTICAL
// to RunRpDbscan from scratch on the accumulated points with the same
// options — per-point labels (which are cluster ids, so identity covers
// cluster numbering too), cluster/noise counts, and the published
// snapshot's meta. Randomized over dims 2-5, both Phase II query engines,
// skewed cluster sizes, and minPts-boundary duplicate data; re-seed via
// RPDBSCAN_TEST_SEED.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/rp_dbscan.h"
#include "io/dataset.h"
#include "stream/incremental.h"
#include "util/random.h"
#include "test_seed.h"

namespace rpdbscan {
namespace {

Dataset Prefix(const Dataset& all, size_t n) {
  Dataset out(all.dim());
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) out.Append(all.point(i));
  return out;
}

Dataset Slice(const Dataset& all, size_t begin, size_t count) {
  Dataset out(all.dim());
  out.Reserve(count);
  for (size_t i = 0; i < count; ++i) out.Append(all.point(begin + i));
  return out;
}

/// Skewed synthetic stream: three Gaussian clusters holding ~60/25/15% of
/// the clustered mass plus uniform background noise, in any dimension.
/// The skew matters: the dominant cluster keeps growing every batch while
/// the small ones only occasionally gain points, so the dirty set hits
/// both hot and cold regions of the grid.
Dataset SkewedData(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Dataset data(dim);
  data.Reserve(n);
  std::vector<std::vector<float>> centers(3, std::vector<float>(dim));
  for (auto& c : centers) {
    for (size_t d = 0; d < dim; ++d) {
      c[d] = static_cast<float>(rng.UniformDouble(0.0, 40.0));
    }
  }
  std::vector<float> p(dim);
  for (size_t i = 0; i < n; ++i) {
    const double pick = rng.UniformDouble();
    if (pick < 0.85) {
      const size_t c = pick < 0.51 ? 0 : (pick < 0.72 ? 1 : 2);
      for (size_t d = 0; d < dim; ++d) {
        p[d] = static_cast<float>(rng.Normal(centers[c][d], 0.9));
      }
    } else {
      for (size_t d = 0; d < dim; ++d) {
        p[d] = static_cast<float>(rng.UniformDouble(-5.0, 45.0));
      }
    }
    data.Append(p.data());
  }
  return data;
}

/// Replays `all` as a seed prefix plus randomly-sized batches, publishing
/// an epoch after every batch and asserting bit-identity against a
/// from-scratch run on the accumulated prefix.
void DifferentialReplay(const Dataset& all, const RpDbscanOptions& options,
                        size_t seed_points, uint64_t batch_seed) {
  auto clusterer_or = StreamClusterer::Create(Prefix(all, seed_points),
                                              options);
  ASSERT_TRUE(clusterer_or.ok()) << clusterer_or.status();
  StreamClusterer clusterer = std::move(*clusterer_or);

  Rng batch_rng(batch_seed);
  const size_t n = all.size();
  size_t pos = seed_points;
  size_t epoch = 0;
  while (true) {
    SCOPED_TRACE("epoch " + std::to_string(epoch) + " at " +
                 std::to_string(pos) + "/" + std::to_string(n) + " points");
    auto epoch_or = clusterer.PublishEpoch();
    ASSERT_TRUE(epoch_or.ok()) << epoch_or.status();

    auto scratch_or = RunRpDbscan(Prefix(all, pos), options);
    ASSERT_TRUE(scratch_or.ok()) << scratch_or.status();
    ASSERT_EQ(epoch_or->labels, scratch_or->labels);
    EXPECT_EQ(epoch_or->stats.sequence, epoch);
    EXPECT_EQ(epoch_or->stats.total_points, pos);
    EXPECT_EQ(epoch_or->snapshot.meta().num_points, pos);
    EXPECT_TRUE(epoch_or->snapshot.has_epoch());
    EXPECT_EQ(epoch_or->snapshot.epoch().sequence, epoch);

    if (pos >= n) break;
    const size_t span = std::max<size_t>(1, (n - seed_points) / 4);
    size_t take = 1 + static_cast<size_t>(batch_rng.Uniform(span));
    take = std::min(take, n - pos);
    ASSERT_TRUE(clusterer.Ingest(Slice(all, pos, take)).ok());
    pos += take;
    ++epoch;
  }
}

RpDbscanOptions StreamOptions(double eps, size_t min_pts, bool stencil,
                              uint64_t seed) {
  RpDbscanOptions o;
  o.eps = eps;
  o.min_pts = min_pts;
  o.rho = 0.03;
  o.num_threads = 2;
  o.num_partitions = 8;
  o.stencil_queries = stencil;  // false = per-sub-dictionary tree descent
  o.seed = seed;
  o.audit_level = AuditLevel::kCheap;  // audit the stream stages too
  return o;
}

class StreamDifferentialTest
    : public ::testing::TestWithParam<std::tuple<size_t, bool>> {};

TEST_P(StreamDifferentialTest, MatchesScratchRunAcrossSeeds) {
  const size_t dim = std::get<0>(GetParam());
  const bool stencil = std::get<1>(GetParam());
  const uint64_t base = TestSeed(0xA11CE + dim * 101 + (stencil ? 7 : 0));
  for (uint64_t s = 0; s < 3; ++s) {
    const uint64_t seed = base + s;
    SCOPED_TRACE(SeedNote(seed));
    SCOPED_TRACE("dim=" + std::to_string(dim) +
                 (stencil ? " stencil" : " tree-queries"));
    const size_t n = 360 + dim * 60;
    const Dataset all = SkewedData(n, dim, seed);
    // Higher dimensions spread the Gaussians out; grow eps so some cores
    // still form (the differential claim itself holds for any eps).
    const double eps = 1.4 + 0.45 * static_cast<double>(dim);
    DifferentialReplay(all, StreamOptions(eps, 8, stencil, seed), n / 2,
                       seed ^ 0x5eedbeefULL);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsByEngine, StreamDifferentialTest,
    ::testing::Combine(::testing::Values(size_t{2}, size_t{3}, size_t{4},
                                         size_t{5}),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<size_t, bool>>& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "Stencil" : "Tree");
    });

/// minPts-boundary stream: duplicate "sites" emitted round-robin so that
/// contiguous batches split a site's copies across epochs — cells cross
/// the exact min_pts density threshold mid-stream, the hardest edge for
/// an incremental core recompute to get wrong.
TEST(StreamIncrementalTest, MinPtsBoundaryDifferential) {
  const uint64_t seed = TestSeed(0xB0DA);
  SCOPED_TRACE(SeedNote(seed));
  const size_t min_pts = 4;
  for (const bool stencil : {true, false}) {
    SCOPED_TRACE(stencil ? "stencil" : "tree-queries");
    Rng rng(seed);
    const size_t num_sites = 120;
    std::vector<std::pair<float, float>> sites(num_sites);
    std::vector<size_t> copies(num_sites);
    size_t max_copies = 0;
    for (size_t i = 0; i < num_sites; ++i) {
      sites[i] = {static_cast<float>(rng.UniformDouble(0.0, 50.0)),
                  static_cast<float>(rng.UniformDouble(0.0, 50.0))};
      // min_pts - 1, exactly min_pts, or min_pts + 1 copies per site.
      copies[i] = min_pts - 1 + static_cast<size_t>(rng.Uniform(3));
      max_copies = std::max(max_copies, copies[i]);
    }
    Dataset all(2);
    for (size_t rep = 0; rep < max_copies; ++rep) {
      for (size_t i = 0; i < num_sites; ++i) {
        if (rep < copies[i]) {
          const float p[2] = {sites[i].first, sites[i].second};
          all.Append(p);
        }
      }
    }
    DifferentialReplay(all, StreamOptions(0.5, min_pts, stencil, seed),
                       all.size() / 3, seed + 1);
  }
}

/// Empty and single-point batches between epochs must be no-ops and
/// one-cell deltas respectively — and stay differential-exact.
TEST(StreamIncrementalTest, TinyAndEmptyBatches) {
  const uint64_t seed = TestSeed(0xE4411);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset all = SkewedData(240, 3, seed);
  const RpDbscanOptions o = StreamOptions(2.5, 6, true, seed);
  auto clusterer_or = StreamClusterer::Create(Prefix(all, 200), o);
  ASSERT_TRUE(clusterer_or.ok()) << clusterer_or.status();
  StreamClusterer clusterer = std::move(*clusterer_or);
  size_t pos = 200;
  {
    // Epoch 0 drains the seed's touched set (every cell).
    auto epoch_or = clusterer.PublishEpoch();
    ASSERT_TRUE(epoch_or.ok()) << epoch_or.status();
    EXPECT_EQ(epoch_or->stats.touched_cells, epoch_or->stats.total_cells);
  }
  for (size_t step = 0; step < 8; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    // Alternate: empty batch, then a 5-point batch.
    const size_t take = (step % 2 == 0) ? 0 : std::min<size_t>(
                                                  5, all.size() - pos);
    ASSERT_TRUE(clusterer.Ingest(Slice(all, pos, take)).ok());
    pos += take;
    auto epoch_or = clusterer.PublishEpoch();
    ASSERT_TRUE(epoch_or.ok()) << epoch_or.status();
    if (take == 0) EXPECT_EQ(epoch_or->stats.touched_cells, 0u);
    auto scratch_or = RunRpDbscan(Prefix(all, pos), o);
    ASSERT_TRUE(scratch_or.ok()) << scratch_or.status();
    ASSERT_EQ(epoch_or->labels, scratch_or->labels);
  }
}

}  // namespace
}  // namespace rpdbscan
