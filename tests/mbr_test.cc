#include "spatial/mbr.h"

#include <gtest/gtest.h>

namespace rpdbscan {
namespace {

TEST(MbrTest, StartsEmpty) {
  Mbr box(2);
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.dim(), 2u);
}

TEST(MbrTest, ExpandToPointMakesDegenerateBox) {
  Mbr box(2);
  const float p[2] = {3, 4};
  box.ExpandToPoint(p);
  EXPECT_FALSE(box.empty());
  EXPECT_DOUBLE_EQ(box.min(0), 3.0);
  EXPECT_DOUBLE_EQ(box.max(0), 3.0);
  EXPECT_TRUE(box.Contains(p));
}

TEST(MbrTest, ExpandGrowsBounds) {
  Mbr box(2);
  const float a[2] = {0, 0};
  const float b[2] = {10, -5};
  box.ExpandToPoint(a);
  box.ExpandToPoint(b);
  EXPECT_DOUBLE_EQ(box.min(0), 0.0);
  EXPECT_DOUBLE_EQ(box.max(0), 10.0);
  EXPECT_DOUBLE_EQ(box.min(1), -5.0);
  EXPECT_DOUBLE_EQ(box.max(1), 0.0);
}

TEST(MbrTest, ExpandToMbr) {
  Mbr a(1);
  Mbr b(1);
  const float lo[1] = {1};
  const float hi[1] = {9};
  a.ExpandToPoint(lo);
  b.ExpandToPoint(hi);
  a.ExpandToMbr(b);
  EXPECT_DOUBLE_EQ(a.min(0), 1.0);
  EXPECT_DOUBLE_EQ(a.max(0), 9.0);
}

TEST(MbrTest, ContainsIsClosed) {
  Mbr box(2);
  const float a[2] = {0, 0};
  const float b[2] = {2, 2};
  box.ExpandToPoint(a);
  box.ExpandToPoint(b);
  const float edge[2] = {2, 0};
  const float outside[2] = {2.001f, 0};
  EXPECT_TRUE(box.Contains(edge));
  EXPECT_FALSE(box.Contains(outside));
}

TEST(MbrTest, MinDist2InsideIsZero) {
  Mbr box(2);
  const float a[2] = {0, 0};
  const float b[2] = {4, 4};
  box.ExpandToPoint(a);
  box.ExpandToPoint(b);
  const float inside[2] = {2, 2};
  EXPECT_DOUBLE_EQ(box.MinDist2(inside), 0.0);
}

TEST(MbrTest, MinDist2ToFaceAndCorner) {
  Mbr box(2);
  const float a[2] = {0, 0};
  const float b[2] = {4, 4};
  box.ExpandToPoint(a);
  box.ExpandToPoint(b);
  const float face[2] = {2, 7};  // 3 above the top face
  EXPECT_DOUBLE_EQ(box.MinDist2(face), 9.0);
  const float corner[2] = {7, 8};  // 3 right, 4 above the corner
  EXPECT_DOUBLE_EQ(box.MinDist2(corner), 25.0);
}

TEST(MbrTest, MaxDist2IsFarthestCorner) {
  Mbr box(2);
  const float a[2] = {0, 0};
  const float b[2] = {4, 4};
  box.ExpandToPoint(a);
  box.ExpandToPoint(b);
  const float origin[2] = {0, 0};
  EXPECT_DOUBLE_EQ(box.MaxDist2(origin), 32.0);  // corner (4,4)
  const float center[2] = {2, 2};
  EXPECT_DOUBLE_EQ(box.MaxDist2(center), 8.0);
}

TEST(MbrTest, MaxDist2FromOutsidePoint) {
  Mbr box(1);
  const float a[1] = {0};
  const float b[1] = {2};
  box.ExpandToPoint(a);
  box.ExpandToPoint(b);
  const float p[1] = {-3};
  EXPECT_DOUBLE_EQ(box.MaxDist2(p), 25.0);  // to the far face at 2
}

TEST(MbrTest, SetMinMaxDirectly) {
  Mbr box(2);
  box.set_min(0, -1);
  box.set_max(0, 1);
  box.set_min(1, -2);
  box.set_max(1, 2);
  const float p[2] = {0, 0};
  EXPECT_TRUE(box.Contains(p));
}

}  // namespace
}  // namespace rpdbscan
