#include "metrics/rand_index.h"

#include <gtest/gtest.h>

namespace rpdbscan {
namespace {

TEST(RandIndexTest, IdenticalClusteringsScoreOne) {
  const Labels a = {0, 0, 1, 1, 2};
  auto ri = RandIndex(a, a);
  ASSERT_TRUE(ri.ok());
  EXPECT_DOUBLE_EQ(*ri, 1.0);
}

TEST(RandIndexTest, RelabeledClusteringsScoreOne) {
  const Labels a = {0, 0, 1, 1, 2};
  const Labels b = {5, 5, 9, 9, 7};  // same partition, different ids
  auto ri = RandIndex(a, b);
  ASSERT_TRUE(ri.ok());
  EXPECT_DOUBLE_EQ(*ri, 1.0);
}

TEST(RandIndexTest, KnownHandComputedValue) {
  // a: {0,0,1,1}  b: {0,1,1,1}. Pairs: (0,1) same/diff -> disagree;
  // (0,2) diff/diff agree; (0,3) diff/diff agree; (1,2) diff/same
  // disagree; (1,3) diff/same disagree; (2,3) same/same agree.
  // RI = 3/6 = 0.5.
  const Labels a = {0, 0, 1, 1};
  const Labels b = {0, 1, 1, 1};
  auto ri = RandIndex(a, b);
  ASSERT_TRUE(ri.ok());
  EXPECT_DOUBLE_EQ(*ri, 0.5);
}

TEST(RandIndexTest, CompletelyDifferentStructures) {
  // One big cluster vs all singletons: every pair disagrees.
  const Labels a = {0, 0, 0, 0};
  const Labels b = {0, 1, 2, 3};
  auto ri = RandIndex(a, b);
  ASSERT_TRUE(ri.ok());
  EXPECT_DOUBLE_EQ(*ri, 0.0);
}

TEST(RandIndexTest, NoiseAsSingletonsAgreeWhenMatched) {
  const Labels a = {0, 0, kNoise, kNoise};
  const Labels b = {1, 1, kNoise, kNoise};
  auto ri = RandIndex(a, b, NoiseHandling::kSingleton);
  ASSERT_TRUE(ri.ok());
  EXPECT_DOUBLE_EQ(*ri, 1.0);
}

TEST(RandIndexTest, NoiseAsOneClusterDiffersFromSingleton) {
  // Two noise points: singleton mode treats them as different clusters,
  // one-cluster mode as the same. Compare against a labeling that puts
  // them together.
  const Labels a = {kNoise, kNoise};
  const Labels b = {0, 0};
  auto singleton = RandIndex(a, b, NoiseHandling::kSingleton);
  auto one_cluster = RandIndex(a, b, NoiseHandling::kOneCluster);
  ASSERT_TRUE(singleton.ok());
  ASSERT_TRUE(one_cluster.ok());
  EXPECT_DOUBLE_EQ(*singleton, 0.0);
  EXPECT_DOUBLE_EQ(*one_cluster, 1.0);
}

TEST(RandIndexTest, RejectsSizeMismatch) {
  const Labels a = {0, 1};
  const Labels b = {0};
  EXPECT_FALSE(RandIndex(a, b).ok());
}

TEST(RandIndexTest, EmptyIsPerfect) {
  // Two empty labelings are vacuously identical partitions
  // (metrics_edge_case_test pins the full convention set).
  const Labels a;
  auto ri = RandIndex(a, a);
  ASSERT_TRUE(ri.ok());
  EXPECT_DOUBLE_EQ(*ri, 1.0);
}

TEST(RandIndexTest, SinglePointIsPerfect) {
  const Labels a = {0};
  const Labels b = {3};
  auto ri = RandIndex(a, b);
  ASSERT_TRUE(ri.ok());
  EXPECT_DOUBLE_EQ(*ri, 1.0);
}

TEST(AdjustedRandIndexTest, IdenticalIsOne) {
  const Labels a = {0, 0, 1, 1, 2, 2};
  auto ari = AdjustedRandIndex(a, a);
  ASSERT_TRUE(ari.ok());
  EXPECT_DOUBLE_EQ(*ari, 1.0);
}

TEST(AdjustedRandIndexTest, IndependentIsNearZero) {
  // Interleaved labels: b splits each cluster of a evenly.
  Labels a;
  Labels b;
  for (int i = 0; i < 400; ++i) {
    a.push_back(i % 2);
    b.push_back((i / 2) % 2);
  }
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ari.ok());
  EXPECT_NEAR(*ari, 0.0, 0.05);
}

TEST(AdjustedRandIndexTest, LowerThanRandIndexForPartialMatch) {
  const Labels a = {0, 0, 0, 1, 1, 1};
  const Labels b = {0, 0, 1, 1, 2, 2};
  auto ri = RandIndex(a, b);
  auto ari = AdjustedRandIndex(a, b);
  ASSERT_TRUE(ri.ok());
  ASSERT_TRUE(ari.ok());
  EXPECT_LT(*ari, *ri);
}

}  // namespace
}  // namespace rpdbscan
