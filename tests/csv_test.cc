#include "io/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace rpdbscan {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/csv_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(CsvTest, ReadsCommaSeparated) {
  WriteFile("1.0,2.0\n3.5,-4.5\n");
  auto ds = ReadCsv(path_);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->dim(), 2u);
  ASSERT_EQ(ds->size(), 2u);
  EXPECT_FLOAT_EQ(ds->point(1)[1], -4.5f);
}

TEST_F(CsvTest, ReadsWhitespaceSeparated) {
  WriteFile("1 2 3\n4 5 6\n");
  auto ds = ReadCsv(path_);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dim(), 3u);
  EXPECT_EQ(ds->size(), 2u);
}

TEST_F(CsvTest, SkipsCommentsAndBlankLines) {
  WriteFile("# header\n\n1,2\n# middle\n3,4\n");
  auto ds = ReadCsv(path_);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
}

TEST_F(CsvTest, RejectsArityMismatch) {
  WriteFile("1,2\n3,4,5\n");
  auto ds = ReadCsv(path_);
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kIOError);
}

TEST_F(CsvTest, RejectsUnparsableRow) {
  WriteFile("1,2\nfoo,bar\n");
  EXPECT_FALSE(ReadCsv(path_).ok());
}

TEST_F(CsvTest, RejectsEmptyFile) {
  WriteFile("");
  EXPECT_FALSE(ReadCsv(path_).ok());
}

TEST_F(CsvTest, MissingFileIsIOError) {
  auto ds = ReadCsv("/nonexistent/dir/file.csv");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kIOError);
}

TEST_F(CsvTest, RoundTripWithoutLabels) {
  Dataset ds(2);
  ds.Append({1.5f, 2.5f});
  ds.Append({-3.0f, 4.0f});
  ASSERT_TRUE(WriteCsv(path_, ds).ok());
  auto back = ReadCsv(path_);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_FLOAT_EQ(back->point(0)[0], 1.5f);
  EXPECT_FLOAT_EQ(back->point(1)[1], 4.0f);
}

TEST_F(CsvTest, RoundTripWithLabels) {
  Dataset ds(2);
  ds.Append({1.0f, 2.0f});
  ds.Append({3.0f, 4.0f});
  const Labels labels = {7, kNoise};
  ASSERT_TRUE(WriteCsv(path_, ds, &labels).ok());
  auto back = ReadCsv(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->dim(), 3u);  // label column appended
  EXPECT_FLOAT_EQ(back->point(0)[2], 7.0f);
  EXPECT_FLOAT_EQ(back->point(1)[2], -1.0f);
}

TEST_F(CsvTest, WriteRejectsLabelSizeMismatch) {
  Dataset ds(2);
  ds.Append({1.0f, 2.0f});
  const Labels labels = {1, 2, 3};
  EXPECT_EQ(WriteCsv(path_, ds, &labels).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rpdbscan
