// Randomized three-way equivalence of the Phase II query engines: the
// lattice-stencil kernel (CellDictionary::QueryCellStencil over the global
// cell index) must reproduce both the batched tree kernel (QueryCell) and
// the reference per-point Query path bit-for-bit — same core points, same
// core cells, same edge sets — across dimensionalities, rho values and
// skipping settings, including through the serialize/deserialize broadcast
// round-trip, plus the high-dimensionality and build-option fallbacks and
// the sub-cell-range MBR containment contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/phase2.h"
#include "core/rp_dbscan.h"
#include "synth/generators.h"
#include "verify/audit.h"

#include "test_seed.h"

namespace rpdbscan {
namespace {

struct EngineConfig {
  double eps = 1.0;
  double rho = 0.05;
  size_t partitions = 5;
  size_t min_pts = 20;
  bool use_rtree = false;
  bool skipping = true;
  bool defragment = true;
  bool build_stencil = true;
  size_t max_stencil_offsets = 8192;
  /// Round-trip the dictionary through its Lemma 4.3 wire format before
  /// querying (the broadcast path rebuilds the global index and stencil).
  bool roundtrip = false;
};

struct ThreeWayOutcome {
  Phase2Result stencil;   // result under Phase2Options defaults
  Phase2Result tree;      // batched, stencil_queries = false
  bool has_stencil = false;
  size_t num_cells = 0;
  size_t stencil_offsets = 0;
};

std::vector<std::tuple<uint32_t, uint32_t>> CanonicalEdges(
    const Phase2Result& r) {
  std::vector<std::tuple<uint32_t, uint32_t>> edges;
  for (const CellSubgraph& g : r.subgraphs) {
    for (const CellEdge& e : g.edges) {
      EXPECT_EQ(e.type, EdgeType::kUndetermined);
      edges.emplace_back(e.from, e.to);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Runs all three engines on one pipeline and asserts identical output
/// plus the per-engine counter contracts.
ThreeWayOutcome ExpectThreeWayEquivalent(const Dataset& data,
                                         const EngineConfig& cfg) {
  ThreeWayOutcome out;
  auto geom = GridGeometry::Create(data.dim(), cfg.eps, cfg.rho);
  EXPECT_TRUE(geom.ok());
  auto cells = CellSet::Build(data, *geom, cfg.partitions, 7);
  EXPECT_TRUE(cells.ok());
  CellDictionaryOptions dict_opts;
  dict_opts.max_cells_per_subdict = 64;  // force several sub-dictionaries
  dict_opts.defragment = cfg.defragment;
  dict_opts.enable_skipping = cfg.skipping;
  dict_opts.index =
      cfg.use_rtree ? CandidateIndex::kRTree : CandidateIndex::kKdTree;
  dict_opts.build_stencil = cfg.build_stencil;
  dict_opts.max_stencil_offsets = cfg.max_stencil_offsets;
  ThreadPool pool(3);
  auto built = CellDictionary::Build(data, *cells, dict_opts, &pool);
  EXPECT_TRUE(built.ok());
  CellDictionary dict = std::move(*built);
  if (cfg.roundtrip) {
    auto wire = CellDictionary::Deserialize(dict.Serialize(), dict_opts,
                                            &pool);
    EXPECT_TRUE(wire.ok());
    EXPECT_EQ(wire->has_stencil(), dict.has_stencil());
    dict = std::move(*wire);
  }

  Phase2Options per_point_opts;
  per_point_opts.batched_queries = false;
  Phase2Options tree_opts;
  tree_opts.stencil_queries = false;
  const Phase2Options stencil_opts;  // defaults: batched + stencil
  Phase2Result a =
      BuildSubgraphs(data, *cells, dict, cfg.min_pts, pool, per_point_opts);
  Phase2Result t =
      BuildSubgraphs(data, *cells, dict, cfg.min_pts, pool, tree_opts);
  Phase2Result s =
      BuildSubgraphs(data, *cells, dict, cfg.min_pts, pool, stencil_opts);

  EXPECT_EQ(a.point_is_core, t.point_is_core);
  EXPECT_EQ(a.point_is_core, s.point_is_core);
  EXPECT_EQ(a.cell_is_core, t.cell_is_core);
  EXPECT_EQ(a.cell_is_core, s.cell_is_core);
  const auto edges = CanonicalEdges(a);
  EXPECT_EQ(edges, CanonicalEdges(t));
  EXPECT_EQ(edges, CanonicalEdges(s));
  // Structural auditors at kFull: all three engines must emit
  // invariant-clean structures, not merely equal ones.
  const AuditReport cell_audit = AuditCellSet(data, *cells, AuditLevel::kFull);
  EXPECT_TRUE(cell_audit.ok()) << cell_audit.ToString();
  const AuditReport dict_audit =
      AuditDictionary(data, *cells, dict, AuditLevel::kFull);
  EXPECT_TRUE(dict_audit.ok()) << dict_audit.ToString();
  for (const Phase2Result* r : {&a, &t, &s}) {
    const AuditReport graph_audit =
        AuditCellGraph(data, *cells, *r, AuditLevel::kFull);
    EXPECT_TRUE(graph_audit.ok()) << graph_audit.ToString();
  }
  // Counter contracts. Only the stencil engine walks lattice
  // neighborhoods; the window size bounds its probe count by
  // (|stencil| + 1) per processed cell (every CellSet cell is non-empty
  // and processed once) from above, and by one per cell from below — the
  // source cell is always the first entry of its own precomputed
  // neighborhood and always resolves, giving hits >= cells too.
  EXPECT_EQ(a.stencil_probes, 0u);
  EXPECT_EQ(a.stencil_hits, 0u);
  EXPECT_EQ(t.stencil_probes, 0u);
  EXPECT_EQ(t.stencil_hits, 0u);
  EXPECT_GT(t.subdict_visited, 0u);
  if (dict.has_stencil()) {
    EXPECT_GE(s.stencil_probes, cells->num_cells());
    EXPECT_LE(s.stencil_probes,
              cells->num_cells() * (dict.stencil().num_offsets() + 1));
    EXPECT_LE(s.stencil_hits, s.stencil_probes);
    EXPECT_GE(s.stencil_hits, cells->num_cells());
    // The stencil engine never descends sub-dictionaries.
    EXPECT_EQ(s.subdict_visited, 0u);
    EXPECT_EQ(s.subdict_possible, 0u);
  } else {
    // Fallback: stencil_queries silently took the tree path, so the
    // tree-side counters must match run t exactly.
    EXPECT_EQ(s.stencil_probes, 0u);
    EXPECT_EQ(s.stencil_hits, 0u);
    EXPECT_EQ(s.subdict_visited, t.subdict_visited);
    EXPECT_EQ(s.subdict_possible, t.subdict_possible);
    EXPECT_EQ(s.candidate_cells_scanned, t.candidate_cells_scanned);
    EXPECT_EQ(s.early_exits, t.early_exits);
  }
  out.has_stencil = dict.has_stencil();
  out.num_cells = cells->num_cells();
  out.stencil_offsets = dict.has_stencil() ? dict.stencil().num_offsets() : 0;
  out.tree = std::move(t);
  out.stencil = std::move(s);
  return out;
}

TEST(StencilQueryTest, RandomizedAcrossDimsRhoAndSkipping) {
  uint64_t seed = TestSeed(4000);
  SCOPED_TRACE(SeedNote(seed));
  for (size_t dim = 2; dim <= 5; ++dim) {
    const Dataset data = synth::Blobs(1000, 4, 2.0, ++seed, dim);
    for (const double rho : {0.3, 0.05}) {
      for (const bool skipping : {true, false}) {
        SCOPED_TRACE("dim=" + std::to_string(dim) +
                     " rho=" + std::to_string(rho) +
                     " skip=" + std::to_string(skipping));
        EngineConfig cfg;
        cfg.eps = 2.5;
        cfg.rho = rho;
        cfg.min_pts = 20;
        cfg.skipping = skipping;
        const ThreeWayOutcome o = ExpectThreeWayEquivalent(data, cfg);
        EXPECT_TRUE(o.has_stencil);  // default cap covers d <= 5
      }
    }
  }
}

TEST(StencilQueryTest, SkewedGeoLifeAnalogueRhoSweep) {
  // The workload the stencil engine targets: one super-dense component
  // where every probe hits and tiny rho makes sub-cell grids deep. Also
  // exercises the R-tree tree path against the stencil.
  const uint64_t seed = TestSeed(4901);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset data = synth::GeoLifeLike(3000, seed);
  for (const double rho : {0.25, 0.05, 0.01}) {
    for (const bool rtree : {false, true}) {
      SCOPED_TRACE("rho=" + std::to_string(rho) +
                   " rtree=" + std::to_string(rtree));
      EngineConfig cfg;
      cfg.eps = 2.0;
      cfg.rho = rho;
      cfg.min_pts = 20;
      cfg.use_rtree = rtree;
      const ThreeWayOutcome o = ExpectThreeWayEquivalent(data, cfg);
      EXPECT_TRUE(o.has_stencil);
      // 3-d stencil: the whole 5^3 window minus self.
      EXPECT_EQ(o.stencil_offsets, 124u);
      EXPECT_GT(o.stencil.early_exits, 0u);  // dense cells prove coreness
    }
  }
}

TEST(StencilQueryTest, MinPtsOnBothSidesOfEarlyExit) {
  const uint64_t seed = TestSeed(4077);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset data = synth::Blobs(1500, 3, 1.5, seed, 3);
  std::vector<size_t> probes_per_min_pts;
  for (const size_t min_pts : {size_t{1}, size_t{25}, size_t{1000000}}) {
    SCOPED_TRACE("min_pts=" + std::to_string(min_pts));
    EngineConfig cfg;
    cfg.eps = 1.2;
    cfg.min_pts = min_pts;
    const ThreeWayOutcome o = ExpectThreeWayEquivalent(data, cfg);
    // The probe count is a function of the lattice only (the precomputed
    // neighborhoods see neither densities nor min_pts), so it must be
    // identical on both sides of the early-exit threshold; only the
    // downstream scan work varies.
    EXPECT_GE(o.stencil.stencil_probes, o.num_cells);
    EXPECT_LE(o.stencil.stencil_probes,
              o.num_cells * (o.stencil_offsets + 1));
    probes_per_min_pts.push_back(o.stencil.stencil_probes);
  }
  ASSERT_EQ(probes_per_min_pts.size(), 3u);
  EXPECT_EQ(probes_per_min_pts[0], probes_per_min_pts[1]);
  EXPECT_EQ(probes_per_min_pts[0], probes_per_min_pts[2]);
}

TEST(StencilQueryTest, HighDimFallbackStaysEquivalent) {
  // d = 6 exceeds the default stencil cap: the dictionary must come back
  // without a stencil and stencil_queries must silently ride the tree
  // path, still bit-identical to the reference.
  const uint64_t seed = TestSeed(4666);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset data = synth::Blobs(600, 3, 2.0, seed, 6);
  EngineConfig cfg;
  cfg.eps = 3.0;
  cfg.min_pts = 10;
  const ThreeWayOutcome o = ExpectThreeWayEquivalent(data, cfg);
  EXPECT_FALSE(o.has_stencil);
  // Raising the cap far enough re-enables the stencil at d = 6.
  EngineConfig wide = cfg;
  wide.max_stencil_offsets = 65536;
  const ThreeWayOutcome ow = ExpectThreeWayEquivalent(data, wide);
  EXPECT_TRUE(ow.has_stencil);
  EXPECT_EQ(ow.stencil_offsets, 41220u);
}

TEST(StencilQueryTest, BuildStencilOffFallsBack) {
  const uint64_t seed = TestSeed(4042);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset data = synth::Moons(800, 0.05, seed);
  EngineConfig cfg;
  cfg.eps = 0.05;
  cfg.rho = 0.25;
  cfg.min_pts = 3;
  cfg.defragment = false;
  cfg.build_stencil = false;
  const ThreeWayOutcome o = ExpectThreeWayEquivalent(data, cfg);
  EXPECT_FALSE(o.has_stencil);
}

TEST(StencilQueryTest, SerializeRoundtripRebuildsIndexAndStencil) {
  // The broadcast path: Deserialize must rebuild the global cell index
  // and stencil so receiving workers can run the stencil engine, with
  // results identical to the sender's.
  uint64_t seed = TestSeed(4123);
  SCOPED_TRACE(SeedNote(seed));
  for (size_t dim = 2; dim <= 3; ++dim) {
    SCOPED_TRACE("dim=" + std::to_string(dim));
    const Dataset data = synth::Blobs(900, 4, 2.0, ++seed, dim);
    EngineConfig cfg;
    cfg.eps = 2.0;
    cfg.min_pts = 15;
    cfg.roundtrip = true;
    const ThreeWayOutcome o = ExpectThreeWayEquivalent(data, cfg);
    EXPECT_TRUE(o.has_stencil);
  }
}

TEST(StencilQueryTest, FindDictCellResolvesEveryCellAndRejectsAbsent) {
  const uint64_t seed = TestSeed(4555);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset data = synth::Blobs(1200, 4, 2.0, seed, 3);
  auto geom = GridGeometry::Create(3, 2.0, 0.05);
  ASSERT_TRUE(geom.ok());
  auto cells = CellSet::Build(data, *geom, 4, 7);
  ASSERT_TRUE(cells.ok());
  CellDictionaryOptions dict_opts;
  dict_opts.max_cells_per_subdict = 64;
  auto dict = CellDictionary::Build(data, *cells, dict_opts);
  ASSERT_TRUE(dict.ok());
  for (uint32_t cid = 0; cid < cells->num_cells(); ++cid) {
    const CellCoord& coord = cells->cell(cid).coord;
    const DictCellRef ref = dict->FindDictCell(coord);
    ASSERT_TRUE(static_cast<bool>(ref));
    EXPECT_EQ(ref.cell->cell_id, cid);
    EXPECT_TRUE(ref.cell->coord == coord);
    EXPECT_GT(ref.cell->total_count, 0u);
  }
  // A coordinate far outside the populated lattice resolves to null.
  int32_t far[CellCoord::kMaxDim] = {};
  const CellCoord& some = cells->cell(0).coord;
  for (size_t d = 0; d < 3; ++d) far[d] = some[d];
  far[0] += 100000;
  EXPECT_FALSE(static_cast<bool>(dict->FindDictCell(CellCoord(far, 3))));
}

TEST(StencilQueryTest, SubcellRangeMbrCoversEveryPoint) {
  // The contract ProcessCellBatched's debug assert enforces, checked here
  // in every build mode: the box decoded from occupied sub-cell ranges
  // covers each of the cell's points, and lies within the cell box padded
  // by one float ulp per face.
  uint64_t seed = TestSeed(4200);
  SCOPED_TRACE(SeedNote(seed));
  for (size_t dim = 2; dim <= 4; ++dim) {
    SCOPED_TRACE("dim=" + std::to_string(dim));
    const Dataset data = synth::Blobs(1000, 5, 2.5, ++seed, dim);
    auto geom = GridGeometry::Create(dim, 1.7, 0.04);
    ASSERT_TRUE(geom.ok());
    auto cells = CellSet::Build(data, *geom, 4, 7);
    ASSERT_TRUE(cells.ok());
    auto dict = CellDictionary::Build(data, *cells, CellDictionaryOptions());
    ASSERT_TRUE(dict.ok());
    for (uint32_t cid = 0; cid < cells->num_cells(); ++cid) {
      const CellData& cell = cells->cell(cid);
      float lo[CellCoord::kMaxDim];
      float hi[CellCoord::kMaxDim];
      ASSERT_TRUE(SubcellRangeMbr(*dict, cell.coord, lo, hi));
      for (const uint32_t pid : cell.point_ids) {
        const float* p = data.point(pid);
        for (size_t d = 0; d < dim; ++d) {
          ASSERT_GE(p[d], lo[d]) << "cell " << cid << " dim " << d;
          ASSERT_LE(p[d], hi[d]) << "cell " << cid << " dim " << d;
        }
      }
      // The box stays within the cell box up to float-rounding slack:
      // double->float rounding plus the one-ulp outward padding is at
      // most ~1.5 float ulps of the coordinate magnitude.
      for (size_t d = 0; d < dim; ++d) {
        const double origin = geom->CellOrigin(cell.coord, d);
        const double mag =
            std::abs(origin) + geom->cell_side() + 1.0;
        const double slack =
            4.0 * mag *
            static_cast<double>(std::numeric_limits<float>::epsilon());
        EXPECT_GE(static_cast<double>(lo[d]), origin - slack);
        EXPECT_LE(static_cast<double>(hi[d]),
                  origin + geom->cell_side() + slack);
      }
    }
    // Absent coordinate: the caller must get false (and then fall back to
    // a point scan).
    int32_t far[CellCoord::kMaxDim] = {};
    for (size_t d = 0; d < dim; ++d) far[d] = cells->cell(0).coord[d];
    far[dim - 1] -= 99999;
    float lo[CellCoord::kMaxDim];
    float hi[CellCoord::kMaxDim];
    EXPECT_FALSE(SubcellRangeMbr(*dict, CellCoord(far, dim), lo, hi));
  }
}

TEST(StencilQueryTest, EndToEndPipelineLabelsIdentical) {
  // Full RunRpDbscan under all three engines: identical labels, and the
  // run stats reflect which engine actually executed.
  const uint64_t seed = TestSeed(4321);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset data = synth::GeoLifeLike(2500, seed);
  RpDbscanOptions base;
  base.eps = 2.0;
  base.min_pts = 20;
  base.rho = 0.01;
  base.num_partitions = 6;
  base.num_threads = 3;
  base.audit_level = AuditLevel::kCheap;

  RpDbscanOptions stencil = base;  // defaults: batched + stencil
  RpDbscanOptions tree = base;
  tree.stencil_queries = false;
  RpDbscanOptions per_point = base;
  per_point.batched_queries = false;

  const auto rs = RunRpDbscan(data, stencil);
  const auto rt = RunRpDbscan(data, tree);
  const auto rp = RunRpDbscan(data, per_point);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(rs->labels, rt->labels);
  EXPECT_EQ(rs->labels, rp->labels);
  EXPECT_GT(rs->stats.stencil_probes, 0u);
  EXPECT_LE(rs->stats.stencil_hits, rs->stats.stencil_probes);
  EXPECT_EQ(rt->stats.stencil_probes, 0u);
  EXPECT_EQ(rp->stats.stencil_probes, 0u);
  EXPECT_GT(rt->stats.subdict_visited, 0u);
  EXPECT_EQ(rs->stats.subdict_visited, 0u);  // stencil never descends
}

}  // namespace
}  // namespace rpdbscan
