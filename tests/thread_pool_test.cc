#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace rpdbscan {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, WaitBlocksUntilLongTaskFinishes) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.Submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.store(true);
  });
  pool.Wait();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] {
    count.fetch_add(1);
    pool.Submit([&] { count.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(count.load(), 32);
}

}  // namespace
}  // namespace rpdbscan
