#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/rp_dbscan.h"
#include "serve/snapshot_audit.h"
#include "synth/generators.h"
#include "test_seed.h"

namespace rpdbscan {
namespace {

RpDbscanOptions Opts(double eps, size_t min_pts) {
  RpDbscanOptions o;
  o.eps = eps;
  o.min_pts = min_pts;
  o.num_threads = 2;
  o.num_partitions = 4;
  o.capture_model = true;
  return o;
}

/// Runs the pipeline with capture on and freezes the model.
ClusterModelSnapshot MakeSnapshot(const Dataset& ds,
                                  const RpDbscanOptions& opts,
                                  const SnapshotOptions& sopts =
                                      SnapshotOptions()) {
  auto run = RunRpDbscan(ds, opts);
  EXPECT_TRUE(run.ok()) << run.status();
  EXPECT_NE(run->model, nullptr);
  auto snap = ClusterModelSnapshot::FromModel(std::move(*run->model), sopts);
  EXPECT_TRUE(snap.ok()) << snap.status();
  return std::move(*snap);
}

TEST(SnapshotTest, CaptureOffLeavesResultModelEmpty) {
  const Dataset ds = synth::Blobs(500, 2, 1.0, 11);
  RpDbscanOptions o = Opts(1.0, 10);
  o.capture_model = false;
  auto run = RunRpDbscan(ds, o);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->model, nullptr);
}

TEST(SnapshotTest, RoundTripPreservesEveryTable) {
  const Dataset ds = synth::Blobs(3000, 4, 1.0, 12);
  const ClusterModelSnapshot snap = MakeSnapshot(ds, Opts(1.0, 15));
  const std::vector<uint8_t> bytes = snap.Serialize();

  auto loaded = ClusterModelSnapshot::Deserialize(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->meta().dim, snap.meta().dim);
  EXPECT_EQ(loaded->meta().eps, snap.meta().eps);
  EXPECT_EQ(loaded->meta().rho, snap.meta().rho);
  EXPECT_EQ(loaded->meta().min_pts, snap.meta().min_pts);
  EXPECT_EQ(loaded->meta().num_points, snap.meta().num_points);
  EXPECT_EQ(loaded->meta().num_cells, snap.meta().num_cells);
  EXPECT_EQ(loaded->meta().num_subcells, snap.meta().num_subcells);
  EXPECT_EQ(loaded->meta().num_clusters, snap.meta().num_clusters);
  EXPECT_TRUE(loaded->has_border_refs());
  EXPECT_EQ(loaded->cell_cluster(), snap.cell_cluster());
  EXPECT_EQ(loaded->pred_offsets(), snap.pred_offsets());
  EXPECT_EQ(loaded->preds(), snap.preds());
  EXPECT_EQ(loaded->ref_offsets(), snap.ref_offsets());
  EXPECT_EQ(loaded->ref_coords(), snap.ref_coords());

  // Serialize is deterministic: a reload serializes to the same bytes.
  EXPECT_EQ(loaded->Serialize(), bytes);
}

TEST(SnapshotTest, FileRoundTrip) {
  const Dataset ds = synth::Blobs(1500, 3, 1.0, 13);
  const ClusterModelSnapshot snap = MakeSnapshot(ds, Opts(1.0, 12));
  const std::string path = ::testing::TempDir() + "snapshot_test.rpsnap";
  ASSERT_TRUE(snap.WriteFile(path).ok());
  auto loaded = ClusterModelSnapshot::ReadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->Serialize(), snap.Serialize());
  std::remove(path.c_str());
}

TEST(SnapshotTest, WithoutBorderRefsDropsTheSection) {
  const Dataset ds = synth::Blobs(1500, 3, 1.0, 14);
  SnapshotOptions sopts;
  sopts.include_border_refs = false;
  const ClusterModelSnapshot snap = MakeSnapshot(ds, Opts(1.0, 12), sopts);
  EXPECT_FALSE(snap.has_border_refs());
  EXPECT_EQ(snap.ref_offsets().back(), 0u);
  auto loaded = ClusterModelSnapshot::Deserialize(snap.Serialize());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->has_border_refs());
  EXPECT_LT(snap.Serialize().size(),
            MakeSnapshot(ds, Opts(1.0, 12)).Serialize().size());
}

TEST(SnapshotTest, FromModelRejectsInconsistentTables) {
  const Dataset ds = synth::Blobs(800, 2, 1.0, 15);
  auto run = RunRpDbscan(ds, Opts(1.0, 10));
  ASSERT_TRUE(run.ok()) << run.status();
  CapturedModel model = std::move(*run->model);
  model.merged.core_cluster.pop_back();  // table/dictionary disagreement
  auto snap = ClusterModelSnapshot::FromModel(std::move(model));
  EXPECT_FALSE(snap.ok());
}

// --- corruption: every failure is a stage-named Status, never UB ---

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Dataset ds = synth::Blobs(1200, 3, 1.0, 16);
    bytes_ = MakeSnapshot(ds, Opts(1.0, 12)).Serialize();
  }

  static std::string FailureMessage(const std::vector<uint8_t>& bytes) {
    auto loaded = ClusterModelSnapshot::Deserialize(bytes);
    EXPECT_FALSE(loaded.ok());
    return loaded.ok() ? std::string() : loaded.status().message();
  }

  std::vector<uint8_t> bytes_;
};

TEST_F(SnapshotCorruptionTest, BadMagic) {
  std::vector<uint8_t> bad = bytes_;
  bad[0] ^= 0xff;
  const std::string msg = FailureMessage(bad);
  EXPECT_NE(msg.find("snapshot header"), std::string::npos) << msg;
  EXPECT_NE(msg.find("magic"), std::string::npos) << msg;
}

TEST_F(SnapshotCorruptionTest, BadVersion) {
  std::vector<uint8_t> bad = bytes_;
  bad[4] ^= 0x10;
  const std::string msg = FailureMessage(bad);
  EXPECT_NE(msg.find("snapshot header"), std::string::npos) << msg;
  EXPECT_NE(msg.find("version"), std::string::npos) << msg;
}

TEST_F(SnapshotCorruptionTest, TruncationAtEveryBoundary) {
  // A handful of truncation points: inside the header, inside the section
  // table, inside payloads, one byte short.
  for (const size_t keep :
       {size_t{0}, size_t{7}, size_t{17}, size_t{40}, bytes_.size() / 2,
        bytes_.size() - 1}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    std::vector<uint8_t> bad(bytes_.begin(),
                             bytes_.begin() + static_cast<long>(keep));
    const std::string msg = FailureMessage(bad);
    EXPECT_NE(msg.find("snapshot"), std::string::npos) << msg;
  }
}

TEST_F(SnapshotCorruptionTest, PayloadBitFlipFailsChecksum) {
  // Flip one byte in the middle of the payload area (past the header and
  // six 32-byte table entries) — some section's checksum must catch it.
  std::vector<uint8_t> bad = bytes_;
  bad[bad.size() / 2] ^= 0x01;
  const std::string msg = FailureMessage(bad);
  EXPECT_NE(msg.find("checksum mismatch"), std::string::npos) << msg;
}

TEST_F(SnapshotCorruptionTest, AuditorFlagsCorruptBytesAndPassesGoodOnes) {
  EXPECT_TRUE(AuditSnapshotBytes(bytes_).ok());
  std::vector<uint8_t> bad = bytes_;
  bad[bad.size() / 2] ^= 0x01;
  EXPECT_GT(AuditSnapshotBytes(bad).violations(), 0u);
  bad = bytes_;
  bad[0] ^= 0xff;
  EXPECT_GT(AuditSnapshotBytes(bad).violations(), 0u);
}

// --- auditor passes ---

TEST(SnapshotAuditTest, StructureAndRunAgreementOnFreshSnapshot) {
  const uint64_t seed = TestSeed(17);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(2500, 4, 1.0, seed);
  const RpDbscanOptions opts = Opts(1.0, 15);
  const ClusterModelSnapshot snap = MakeSnapshot(ds, opts);

  const AuditReport bytes_report = AuditSnapshotBytes(snap.Serialize());
  EXPECT_TRUE(bytes_report.ok()) << bytes_report.ToString();

  const AuditReport structure = AuditSnapshotStructure(snap);
  EXPECT_TRUE(structure.ok()) << structure.ToString();

  const AuditReport against = AuditSnapshotAgainstRun(snap, ds, opts);
  EXPECT_TRUE(against.ok()) << against.ToString();
}

TEST(SnapshotAuditTest, AgainstRunCatchesAForeignSnapshot) {
  const Dataset ds = synth::Blobs(1200, 3, 1.0, 18);
  const RpDbscanOptions opts = Opts(1.0, 12);
  const ClusterModelSnapshot snap = MakeSnapshot(ds, opts);
  // Audit against a *different* run (other eps): labels cannot match.
  RpDbscanOptions other = opts;
  other.eps = 1.5;
  const AuditReport report = AuditSnapshotAgainstRun(snap, ds, other);
  EXPECT_GT(report.violations(), 0u);
}

}  // namespace
}  // namespace rpdbscan
