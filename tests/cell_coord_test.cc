#include "core/cell_coord.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace rpdbscan {
namespace {

TEST(CellCoordTest, EqualityAndHash) {
  const int32_t a[3] = {1, -2, 3};
  const int32_t b[3] = {1, -2, 3};
  const int32_t c[3] = {1, -2, 4};
  CellCoord ca(a, 3);
  CellCoord cb(b, 3);
  CellCoord cc(c, 3);
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(ca.hash(), cb.hash());
  EXPECT_FALSE(ca == cc);
}

TEST(CellCoordTest, DimMismatchNotEqual) {
  const int32_t a[3] = {1, 2, 3};
  CellCoord c2(a, 2);
  CellCoord c3(a, 3);
  EXPECT_FALSE(c2 == c3);
}

TEST(CellCoordTest, AccessorsRoundTrip) {
  const int32_t a[4] = {-5, 0, 7, 2147483647};
  CellCoord c(a, 4);
  EXPECT_EQ(c.dim(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(c[i], a[i]);
}

TEST(CellCoordTest, HashScattersNeighboringCells) {
  std::unordered_set<uint64_t> hashes;
  for (int32_t x = -10; x <= 10; ++x) {
    for (int32_t y = -10; y <= 10; ++y) {
      const int32_t a[2] = {x, y};
      hashes.insert(CellCoord(a, 2).hash());
    }
  }
  EXPECT_EQ(hashes.size(), 21u * 21u);  // no collisions on a small lattice
}

TEST(CellCoordTest, WorksAsUnorderedMapKey) {
  std::unordered_set<CellCoord, CellCoordHash> set;
  const int32_t a[2] = {1, 2};
  const int32_t b[2] = {2, 1};
  set.insert(CellCoord(a, 2));
  set.insert(CellCoord(b, 2));
  set.insert(CellCoord(a, 2));  // duplicate
  EXPECT_EQ(set.size(), 2u);
}

TEST(SubcellIdTest, SetGetSingleField) {
  SubcellId id;
  SubcellSetBits(&id, 0, 7, 93);
  EXPECT_EQ(SubcellGetBits(id, 0, 7), 93u);
}

TEST(SubcellIdTest, SetGetMultipleFields) {
  SubcellId id;
  // 13 dimensions x 7 bits = 91 bits, the repository worst case.
  uint64_t values[13];
  for (unsigned d = 0; d < 13; ++d) {
    values[d] = (d * 37 + 11) % 128;
    SubcellSetBits(&id, d * 7, 7, values[d]);
  }
  for (unsigned d = 0; d < 13; ++d) {
    EXPECT_EQ(SubcellGetBits(id, d * 7, 7), values[d]) << "dim " << d;
  }
}

TEST(SubcellIdTest, FieldStraddling64BitBoundary) {
  SubcellId id;
  SubcellSetBits(&id, 60, 8, 0xAB);  // spans lo/hi
  EXPECT_EQ(SubcellGetBits(id, 60, 8), 0xABu);
  EXPECT_NE(id.lo, 0u);
  EXPECT_NE(id.hi, 0u);
}

TEST(SubcellIdTest, FieldEntirelyInHighWord) {
  SubcellId id;
  SubcellSetBits(&id, 64, 10, 777);
  EXPECT_EQ(SubcellGetBits(id, 64, 10), 777u);
  EXPECT_EQ(id.lo, 0u);
}

TEST(SubcellIdTest, EqualityAndHashing) {
  SubcellId a;
  SubcellId b;
  SubcellSetBits(&a, 3, 5, 9);
  SubcellSetBits(&b, 3, 5, 9);
  EXPECT_EQ(a, b);
  EXPECT_EQ(SubcellIdHash()(a), SubcellIdHash()(b));
  SubcellId c;
  SubcellSetBits(&c, 3, 5, 10);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace rpdbscan
