#include "util/status.h"

#include <gtest/gtest.h>

namespace rpdbscan {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::InvalidArgument("bad eps");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad eps");
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.status().message(), "nope");
}

TEST(StatusOrTest, OkStatusIsConvertedToInternalError) {
  StatusOr<int> v = Status::OK();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.ok());
  const std::string moved = std::move(v).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    RPDBSCAN_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);
}

TEST(StatusMacroTest, ReturnIfErrorPassesOk) {
  auto succeeds = [] { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    RPDBSCAN_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace rpdbscan
