// The ladder's central contract, checked differentially: every rung of
// BuildClusterHierarchy is bit-identical to an independent RunRpDbscan at
// the same geometry with query_eps decoupled to the rung's radius — even
// though the ladder shares one Phase I, one dictionary (stencil family
// assembled out to the top rung) and seeds core marking across levels,
// and the independent runs rebuild everything per setting. Runs across
// dimensionalities 2-5 and under both candidate engines (neighborhood-CSR
// prefix reuse, and forced hashed probes).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/rp_dbscan.h"
#include "hierarchy/eps_ladder.h"
#include "synth/generators.h"
#include "test_seed.h"

namespace rpdbscan {
namespace {

struct LadderCase {
  size_t dim;
  std::vector<double> eps_levels;
  size_t min_pts;
};

TEST(HierarchyDifferentialTest, LevelsMatchIndependentRunsAcrossDims) {
  const uint64_t seed = TestSeed(9800);
  SCOPED_TRACE(SeedNote(seed));
  const std::vector<LadderCase> cases = {
      {2, {0.8, 1.1, 1.5, 2.1}, 10},
      {3, {1.0, 1.3, 1.8}, 12},
      {4, {1.2, 1.5, 1.9}, 14},
      {5, {1.5, 1.8}, 16},
  };
  for (const LadderCase& c : cases) {
    SCOPED_TRACE("dim " + std::to_string(c.dim));
    const Dataset ds =
        synth::Blobs(2500, 3, 1.0, seed + c.dim, c.dim);
    for (const bool force_probe : {false, true}) {
      SCOPED_TRACE(force_probe ? "engine probe" : "engine csr-prefix");
      HierarchyOptions ho;
      ho.eps_levels = c.eps_levels;
      ho.min_pts_levels = {c.min_pts};
      ho.num_threads = 2;
      ho.num_partitions = 4;
      ho.force_probe = force_probe;
      auto h = BuildClusterHierarchy(ds, ho);
      ASSERT_TRUE(h.ok()) << h.status();
      ASSERT_EQ(h->levels.size(), c.eps_levels.size());
      std::string err;
      ASSERT_TRUE(h->ValidateForest(&err)) << err;

      for (size_t i = 0; i < h->levels.size(); ++i) {
        RpDbscanOptions o;
        o.eps = c.eps_levels[0];  // the shared grid geometry
        o.query_eps = c.eps_levels[i];
        o.min_pts = c.min_pts;
        o.num_threads = 2;
        o.num_partitions = 4;
        auto independent = RunRpDbscan(ds, o);
        ASSERT_TRUE(independent.ok())
            << "level " << i << ": " << independent.status();
        EXPECT_EQ(h->levels[i].labels, independent->labels)
            << "level " << i << " (eps " << c.eps_levels[i] << ")";
        EXPECT_EQ(h->levels[i].num_clusters,
                  independent->stats.num_clusters)
            << "level " << i;
        EXPECT_EQ(h->levels[i].num_noise_points,
                  independent->stats.num_noise_points)
            << "level " << i;
      }
    }
  }
}

TEST(HierarchyDifferentialTest, EnginesAgreeBitForBit) {
  // Satellite of the prefix-reuse proof: the reused-CSR ladder and the
  // forced-hashed-probe ladder must agree exactly at every level, not
  // just up to cluster renaming.
  const uint64_t seed = TestSeed(9900);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(3000, 4, 1.0, seed, 3);
  HierarchyOptions csr;
  csr.eps_levels = {1.0, 1.4, 1.9, 2.5};
  csr.min_pts_levels = {12};
  csr.num_threads = 2;
  csr.num_partitions = 4;
  HierarchyOptions probe = csr;
  probe.force_probe = true;
  auto a = BuildClusterHierarchy(ds, csr);
  auto b = BuildClusterHierarchy(ds, probe);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->levels.size(), b->levels.size());
  for (size_t i = 0; i < a->levels.size(); ++i) {
    EXPECT_EQ(a->levels[i].labels, b->levels[i].labels) << "level " << i;
    EXPECT_EQ(a->levels[i].parent, b->levels[i].parent) << "level " << i;
    EXPECT_EQ(a->levels[i].num_core_cells, b->levels[i].num_core_cells);
  }
}

TEST(HierarchyDifferentialTest, SampledLadderMatchesSampledIndependentRuns) {
  // The sampled-core mask is a pure function of (cell coord, seed), so
  // the ladder and the independent runs sample identically — the
  // differential contract holds under approximation too.
  const uint64_t seed = TestSeed(10000);
  SCOPED_TRACE(SeedNote(seed));
  const Dataset ds = synth::Blobs(2500, 3, 1.0, seed, 2);
  HierarchyOptions ho;
  ho.eps_levels = {0.9, 1.3, 1.9};
  ho.min_pts_levels = {10};
  ho.num_threads = 2;
  ho.num_partitions = 4;
  ho.sampled_core_fraction = 0.6;
  ho.core_sample_seed = seed;
  auto h = BuildClusterHierarchy(ds, ho);
  ASSERT_TRUE(h.ok()) << h.status();
  for (size_t i = 0; i < h->levels.size(); ++i) {
    RpDbscanOptions o;
    o.eps = ho.eps_levels[0];
    o.query_eps = ho.eps_levels[i];
    o.min_pts = 10;
    o.num_threads = 2;
    o.num_partitions = 4;
    o.sampled_core_fraction = 0.6;
    o.core_sample_seed = seed;
    auto independent = RunRpDbscan(ds, o);
    ASSERT_TRUE(independent.ok()) << independent.status();
    EXPECT_EQ(h->levels[i].labels, independent->labels) << "level " << i;
  }
}

}  // namespace
}  // namespace rpdbscan
